//! Measurement primitives: ping-pong latency and streaming bandwidth over
//! the Open MPI stack, the MPICH-QsNet baseline, and native QDMA — all in
//! deterministic virtual time.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use elan4::{Cluster, ElanCtx, NicConfig};
use mpich_qsnet::{run_mpich, MpichConfig};
use openmpi_core::{
    Metrics, Placement, PtlKind, PtlTraffic, StackConfig, TraceLog, Transports, Universe,
};
use qsim::Mutex;
use qsim::{Dur, Simulation};
use qsnet::FabricConfig;

/// Warm-up round trips before timing starts (the paper discards the first
/// 100 iterations; virtual time is deterministic, so a handful suffices to
/// reach protocol steady state).
pub const WARMUP: usize = 4;
/// Timed round trips per point.
pub const ITERS: usize = 20;

fn pattern(n: usize, seed: u8) -> Vec<u8> {
    (0..n)
        .map(|i| ((i * 31 + seed as usize) % 251) as u8)
        .collect()
}

/// A fully specified machine + stack for one measurement.
#[derive(Clone)]
pub struct Setup {
    pub nic: NicConfig,
    pub fabric: FabricConfig,
    pub stack: StackConfig,
    pub transports: Transports,
}

impl Setup {
    pub fn paper(stack: StackConfig) -> Setup {
        Setup {
            nic: NicConfig::default(),
            fabric: FabricConfig::default(),
            stack,
            transports: Transports::default(),
        }
    }

    fn universe(&self) -> Arc<Universe> {
        Universe::new(
            self.nic.clone(),
            self.fabric.clone(),
            self.stack.clone(),
            self.transports.clone(),
        )
    }
}

/// Half round-trip latency of `len`-byte messages, in µs.
pub fn ompi_latency(setup: &Setup, len: usize) -> f64 {
    let lat = Arc::new(AtomicU64::new(0));
    let l2 = lat.clone();
    setup
        .universe()
        .run_world(2, Placement::RoundRobin, move |mpi| {
            let w = mpi.world();
            let sbuf = mpi.alloc(len.max(1));
            let rbuf = mpi.alloc(len.max(1));
            mpi.write(&sbuf, 0, &pattern(len, mpi.rank() as u8));
            let round = |i: usize| {
                let _ = i;
                if mpi.rank() == 0 {
                    mpi.send(&w, 1, 0, &sbuf, len);
                    mpi.recv(&w, 1, 0, &rbuf, len);
                } else {
                    mpi.recv(&w, 0, 0, &rbuf, len);
                    mpi.send(&w, 0, 0, &sbuf, len);
                }
            };
            for i in 0..WARMUP {
                round(i);
            }
            mpi.barrier(&w);
            let t0 = mpi.now();
            for i in 0..ITERS {
                round(i);
            }
            if mpi.rank() == 0 {
                l2.store(
                    (mpi.now() - t0).as_ns() / (2 * ITERS as u64),
                    Ordering::SeqCst,
                );
            }
        });
    lat.load(Ordering::SeqCst) as f64 / 1_000.0
}

/// Streaming bandwidth in MB/s: `window` messages of `len` bytes in flight,
/// `reps` windows, closed by a zero-byte ack.
pub fn ompi_bandwidth(setup: &Setup, len: usize, window: usize, reps: usize) -> f64 {
    let bw = Arc::new(Mutex::new(0.0f64));
    let b2 = bw.clone();
    setup
        .universe()
        .run_world(2, Placement::RoundRobin, move |mpi| {
            let w = mpi.world();
            let bufs: Vec<_> = (0..window).map(|_| mpi.alloc(len.max(1))).collect();
            let ack = mpi.alloc(1);
            mpi.barrier(&w);
            let t0 = mpi.now();
            for _ in 0..reps {
                if mpi.rank() == 0 {
                    let reqs: Vec<_> = bufs.iter().map(|b| mpi.isend(&w, 1, 0, b, len)).collect();
                    mpi.waitall(reqs);
                    mpi.recv(&w, 1, 1, &ack, 0);
                } else {
                    let reqs: Vec<_> = bufs.iter().map(|b| mpi.irecv(&w, 0, 0, b, len)).collect();
                    mpi.waitall(reqs);
                    mpi.send(&w, 0, 1, &ack, 0);
                }
            }
            if mpi.rank() == 0 {
                let ns = (mpi.now() - t0).as_ns();
                let bytes = (len * window * reps) as f64;
                *b2.lock() = bytes / (ns as f64 / 1e9) / 1e6;
            }
        });
    let v = *bw.lock();
    v
}

/// Everything captured from one instrumented run: per-rank counter and
/// histogram snapshots, per-PTL traffic, the trace rings, and the
/// simulator's own profile (events dispatched, queue occupancy).
pub struct Telemetry {
    /// Metrics snapshot of each rank, indexed by rank.
    pub per_rank: Vec<Metrics>,
    /// Per-rank, per-component frame/byte totals.
    pub traffic: Vec<Vec<PtlTraffic>>,
    /// Per-rank trace rings (rank, log).
    pub traces: Vec<(u32, TraceLog)>,
    /// The discrete-event kernel's report for the whole run.
    pub report: qsim::Report,
}

fn ptl_kind_name(kind: PtlKind) -> String {
    match kind {
        PtlKind::Elan4 { rail } => format!("elan4.{rail}"),
        PtlKind::Tcp => "tcp".to_string(),
    }
}

impl Telemetry {
    /// All ranks' timelines as one Chrome trace-event JSON document.
    pub fn chrome_trace(&self) -> String {
        let refs: Vec<(u32, &TraceLog)> = self.traces.iter().map(|(r, l)| (*r, l)).collect();
        openmpi_core::chrome_trace_json(&refs)
    }

    /// One JSON document: per-rank metrics, PTL traffic, trace-ring status,
    /// and the simulator report.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"ranks\":[");
        for (rank, m) in self.per_rank.iter().enumerate() {
            if rank > 0 {
                out.push(',');
            }
            let traffic: Vec<String> = self.traffic[rank]
                .iter()
                .map(|t| {
                    format!(
                        "{{\"ptl\":\"{}\",\"frames\":{},\"bytes\":{}}}",
                        ptl_kind_name(t.kind),
                        t.sent_frames,
                        t.sent_bytes
                    )
                })
                .collect();
            let (_, trace) = &self.traces[rank];
            out.push_str(&format!(
                "{{\"rank\":{rank},\"metrics\":{},\"ptl_traffic\":[{}],\
                 \"trace\":{{\"retained\":{},\"dropped\":{}}}}}",
                m.to_json(),
                traffic.join(","),
                trace.len(),
                trace.dropped()
            ));
        }
        out.push_str(&format!(
            "],\"sim\":{{\"end_time_ns\":{},\"events_processed\":{},\
             \"procs_spawned\":{},\"max_queue_depth\":{},\"wakes_executed\":{},\
             \"calls_executed\":{},\"stale_wakes\":{},\"sched_past\":{},\
             \"schedule_hash\":\"{:#018x}\",\"wall_ns\":{},\"events_per_sec\":{:.1}}}}}",
            self.report.end_time.as_ns(),
            self.report.events_processed,
            self.report.procs_spawned,
            self.report.max_queue_depth,
            self.report.wakes_executed,
            self.report.calls_executed,
            self.report.stale_wakes,
            self.report.sched_past,
            self.report.schedule_hash,
            self.report.wall_ns,
            self.report.events_per_sec()
        ));
        out
    }
}

/// Run a `ranks`-process ping-pong (rank 0 against each peer in turn) with
/// metrics and tracing forced on, and collect every rank's telemetry.
pub fn telemetry_pingpong(setup: &Setup, ranks: usize, len: usize, iters: usize) -> Telemetry {
    type Row = (u32, Metrics, Vec<PtlTraffic>, TraceLog);
    let mut setup = setup.clone();
    setup.stack.metrics = true;
    setup.stack.trace = true;
    let collected: Arc<Mutex<Vec<Row>>> = Arc::new(Mutex::new(Vec::new()));
    let c2 = collected.clone();
    let report = setup
        .universe()
        .run_world(ranks, Placement::RoundRobin, move |mpi| {
            let w = mpi.world();
            let sbuf = mpi.alloc(len.max(1));
            let rbuf = mpi.alloc(len.max(1));
            mpi.write(&sbuf, 0, &pattern(len, mpi.rank() as u8));
            for _ in 0..iters {
                if mpi.rank() == 0 {
                    for peer in 1..ranks {
                        mpi.send(&w, peer, 0, &sbuf, len);
                        mpi.recv(&w, peer as i32, 0, &rbuf, len);
                    }
                } else {
                    mpi.recv(&w, 0, 0, &rbuf, len);
                    mpi.send(&w, 0, 0, &sbuf, len);
                }
            }
            mpi.barrier(&w);
            let ep = mpi.endpoint();
            c2.lock().push((
                mpi.rank() as u32,
                ep.metrics_snapshot(),
                ep.ptls.lock().traffic(),
                ep.trace.lock().clone(),
            ));
        });
    let mut rows = std::mem::take(&mut *collected.lock());
    rows.sort_by_key(|(r, ..)| *r);
    Telemetry {
        per_rank: rows.iter().map(|(_, m, ..)| m.clone()).collect(),
        traffic: rows.iter().map(|(_, _, t, _)| t.clone()).collect(),
        traces: rows.into_iter().map(|(r, _, _, log)| (r, log)).collect(),
        report,
    }
}

/// A rendezvous ping-pong over the TCP PTL with `drops` FIN_ACK control
/// frames vanishing off the wire: the reliability layer retransmits each
/// one after its timeout and the run completes. The returned telemetry
/// shows the loss being absorbed — `retransmits` equals the injected drop
/// count, `gave_up` stays zero — instead of a watchdog abort.
pub fn reliability_pingpong(setup: &Setup, len: usize, drops: u64) -> Telemetry {
    type Row = (u32, Metrics, Vec<PtlTraffic>, TraceLog);
    let mut setup = setup.clone();
    setup.stack.metrics = true;
    setup.stack.trace = true;
    // Control frames ride the TCP PTL (where the reliability layer lives)
    // only when it is the sole transport.
    setup.stack.inline_first_frag = true;
    setup.transports = Transports {
        elan_rails: 0,
        tcp: true,
    };
    let uni = setup.universe();
    uni.tcp_net
        .inject_drop(openmpi_core::hdr::HdrType::FinAck, drops);
    // One rendezvous round trip per injected drop, plus one clean round.
    let iters = drops as usize + 1;
    let collected: Arc<Mutex<Vec<Row>>> = Arc::new(Mutex::new(Vec::new()));
    let c2 = collected.clone();
    let report = uni.run_world(2, Placement::RoundRobin, move |mpi| {
        let w = mpi.world();
        let sbuf = mpi.alloc(len.max(1));
        let rbuf = mpi.alloc(len.max(1));
        mpi.write(&sbuf, 0, &pattern(len, mpi.rank() as u8));
        for _ in 0..iters {
            if mpi.rank() == 0 {
                mpi.send(&w, 1, 0, &sbuf, len);
                mpi.recv(&w, 1, 0, &rbuf, len);
            } else {
                mpi.recv(&w, 0, 0, &rbuf, len);
                mpi.send(&w, 0, 0, &sbuf, len);
            }
        }
        mpi.barrier(&w);
        let ep = mpi.endpoint();
        c2.lock().push((
            mpi.rank() as u32,
            ep.metrics_snapshot(),
            ep.ptls.lock().traffic(),
            ep.trace.lock().clone(),
        ));
    });
    let mut rows = std::mem::take(&mut *collected.lock());
    rows.sort_by_key(|(r, ..)| *r);
    Telemetry {
        per_rank: rows.iter().map(|(_, m, ..)| m.clone()).collect(),
        traffic: rows.iter().map(|(_, _, t, _)| t.clone()).collect(),
        traces: rows.into_iter().map(|(r, _, _, log)| (r, log)).collect(),
        report,
    }
}

/// One side (cache off or on) of the registration-cache comparison.
pub struct RegBenchSide {
    /// Mean half-round-trip latency in µs.
    pub latency_us: f64,
    /// Rank 0's registration-cache counters at the end of the run.
    pub stats: openmpi_core::RegStats,
}

impl RegBenchSide {
    fn to_json(&self) -> String {
        format!(
            "{{\"latency_us\":{:.3},\"reg\":{{\"hits\":{},\"misses\":{},\
             \"evictions\":{},\"mapped_bytes\":{}}}}}",
            self.latency_us,
            self.stats.hits,
            self.stats.misses,
            self.stats.evictions,
            self.stats.mapped_bytes
        )
    }
}

/// Before/after report of the repeated-buffer rendezvous benchmark.
pub struct RegBenchReport {
    /// Message length in bytes (rendezvous-sized).
    pub len: usize,
    /// Timed round trips.
    pub iters: usize,
    /// Run with the registration cache disabled: every rendezvous pays the
    /// full map + unmap cost.
    pub off: RegBenchSide,
    /// Run with the cache enabled: the same buffers hit after the first
    /// iteration.
    pub on: RegBenchSide,
}

impl RegBenchReport {
    /// Latency ratio cache-off / cache-on (> 1 when the cache wins).
    pub fn speedup(&self) -> f64 {
        self.off.latency_us / self.on.latency_us
    }

    /// One JSON document with both sides and the speedup.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"bench\":\"regcache_rendezvous\",\"len\":{},\"iters\":{},\
             \"cache_off\":{},\"cache_on\":{},\"speedup\":{:.3}}}",
            self.len,
            self.iters,
            self.off.to_json(),
            self.on.to_json(),
            self.speedup()
        )
    }
}

fn reg_bench_side(setup: &Setup, len: usize, iters: usize, cache: bool) -> RegBenchSide {
    let mut setup = setup.clone();
    setup.stack.reg_cache = cache;
    let lat = Arc::new(AtomicU64::new(0));
    let stats: Arc<Mutex<Option<openmpi_core::RegStats>>> = Arc::new(Mutex::new(None));
    let (l2, s2) = (lat.clone(), stats.clone());
    setup
        .universe()
        .run_world(2, Placement::RoundRobin, move |mpi| {
            let w = mpi.world();
            let sbuf = mpi.alloc(len);
            let rbuf = mpi.alloc(len);
            mpi.write(&sbuf, 0, &pattern(len, mpi.rank() as u8));
            // Deliberately no warm-up: the registration cost on a *reused*
            // buffer is exactly what this benchmark measures.
            mpi.barrier(&w);
            let t0 = mpi.now();
            for _ in 0..iters {
                if mpi.rank() == 0 {
                    mpi.send(&w, 1, 0, &sbuf, len);
                    mpi.recv(&w, 1, 0, &rbuf, len);
                } else {
                    mpi.recv(&w, 0, 0, &rbuf, len);
                    mpi.send(&w, 0, 0, &sbuf, len);
                }
            }
            if mpi.rank() == 0 {
                l2.store(
                    (mpi.now() - t0).as_ns() / (2 * iters as u64),
                    Ordering::SeqCst,
                );
                *s2.lock() = Some(mpi.endpoint().reg_stats());
            }
        });
    let stats = stats.lock().take().expect("rank 0 recorded its stats");
    RegBenchSide {
        latency_us: lat.load(Ordering::SeqCst) as f64 / 1_000.0,
        stats,
    }
}

/// The registration-cache benchmark: a rendezvous-sized ping-pong reusing
/// the same send/receive buffers every iteration, run once with the
/// pin-down cache off (every rendezvous pays [`elan4::NicConfig::map_cost`]
/// plus the unmap shootdown) and once with it on (the mappings hit after
/// the first round). The gap is the per-message registration cost the
/// cache amortizes away.
pub fn reg_cache_compare(setup: &Setup, len: usize, iters: usize) -> RegBenchReport {
    assert!(
        len > setup.stack.eager_limit,
        "registration benchmark needs rendezvous-sized messages"
    );
    RegBenchReport {
        len,
        iters,
        off: reg_bench_side(setup, len, iters, false),
        on: reg_bench_side(setup, len, iters, true),
    }
}

/// One message size on the pipelined-rendezvous bandwidth curve.
pub struct BwCurvePoint {
    /// Message length in bytes.
    pub len: usize,
    /// Open MPI with the chunked-RDMA pipeline enabled, MB/s.
    pub pipelined: f64,
    /// Open MPI forced onto the monolithic single-RDMA path, MB/s.
    pub monolithic: f64,
    /// MPICH-QsNet baseline, MB/s.
    pub mpich: f64,
}

/// Bandwidth-vs-size comparison of the pipelined and monolithic rendezvous
/// against the MPICH-QsNet baseline.
pub struct BwCurveReport {
    /// Messages in flight per burst.
    pub window: usize,
    /// Bursts per point.
    pub reps: usize,
    /// One row per message size, ascending.
    pub points: Vec<BwCurvePoint>,
}

impl BwCurveReport {
    /// Smallest measured size at which the chosen Open MPI series matches
    /// or beats the MPICH baseline; `None` if it never does.
    pub fn crossover(&self, pipelined: bool) -> Option<usize> {
        self.points
            .iter()
            .find(|p| (if pipelined { p.pipelined } else { p.monolithic }) >= p.mpich)
            .map(|p| p.len)
    }

    /// The row for a specific message size, if it was measured.
    pub fn point(&self, len: usize) -> Option<&BwCurvePoint> {
        self.points.iter().find(|p| p.len == len)
    }

    /// One JSON document: the full curve plus both crossover points.
    pub fn to_json(&self) -> String {
        let rows: Vec<String> = self
            .points
            .iter()
            .map(|p| {
                format!(
                    "{{\"len\":{},\"pipelined_mbs\":{:.3},\"monolithic_mbs\":{:.3},\
                     \"mpich_mbs\":{:.3}}}",
                    p.len, p.pipelined, p.monolithic, p.mpich
                )
            })
            .collect();
        let xo = |v: Option<usize>| v.map_or("null".to_string(), |n| n.to_string());
        format!(
            "{{\"bench\":\"bw_curve\",\"window\":{},\"reps\":{},\"points\":[{}],\
             \"crossover_pipelined\":{},\"crossover_monolithic\":{}}}",
            self.window,
            self.reps,
            rows.join(","),
            xo(self.crossover(true)),
            xo(self.crossover(false))
        )
    }
}

/// Measure the bandwidth curve: each size is run through Open MPI twice —
/// pipeline enabled and pipeline disabled — and once through MPICH-QsNet.
/// Both Open MPI series run with the registration cache **off**, so every
/// message pays its full map cost; the gap between the two series is
/// exactly the registration time the pipeline hides behind the wire.
pub fn bw_curve(setup: &Setup, sizes: &[usize], window: usize, reps: usize) -> BwCurveReport {
    let mut pipe_setup = setup.clone();
    pipe_setup.stack.reg_cache = false;
    pipe_setup.stack.pipeline_enable = true;
    let mut mono_setup = pipe_setup.clone();
    mono_setup.stack.pipeline_enable = false;
    let points = sizes
        .iter()
        .map(|&len| BwCurvePoint {
            len,
            pipelined: ompi_bandwidth(&pipe_setup, len, window, reps),
            monolithic: ompi_bandwidth(&mono_setup, len, window, reps),
            mpich: mpich_bandwidth(&setup.nic, &setup.fabric, len, window, reps),
        })
        .collect();
    BwCurveReport {
        window,
        reps,
        points,
    }
}

/// Everything the introspection stack yields from one watchdog-armed run:
/// the job-wide pvar aggregation, each rank's raw snapshot, and any stall
/// diagnostics the watchdog recorded.
pub struct IntrospectReport {
    /// Min/max/sum per pvar across the job, with straggler identification.
    pub cluster: ompi_rte::ClusterReport,
    /// Each rank's raw pvar snapshot, indexed by rank.
    pub snapshots: Vec<openmpi_core::PvarSnapshot>,
    /// Total requests declared stalled across all ranks.
    pub stalls: u64,
    /// Recorded stall diagnostics, already rendered as JSON objects.
    pub diagnostics: Vec<String>,
}

impl IntrospectReport {
    /// One JSON document: stall totals, cluster aggregation, raw snapshots.
    pub fn to_json(&self) -> String {
        let ranks: Vec<String> = self.snapshots.iter().map(|s| s.to_json()).collect();
        format!(
            "{{\"stalls\":{},\"cluster\":{},\"ranks\":[{}],\"diagnostics\":[{}]}}",
            self.stalls,
            self.cluster.to_json(),
            ranks.join(","),
            self.diagnostics.join(",")
        )
    }
}

/// The instrumented ping-pong of [`telemetry_pingpong`] with the progress
/// watchdog armed and the introspection plane active: each rank snapshots
/// its pvars and publishes them through the RTE, rank 0 aggregates the
/// cluster report. Telemetry and introspection come from the *same* run, so
/// the pvar totals and the metrics JSON agree by construction.
pub fn introspect_pingpong(
    setup: &Setup,
    ranks: usize,
    len: usize,
    iters: usize,
    watchdog_interval: u64,
) -> (Telemetry, IntrospectReport) {
    type Row = (
        u32,
        Metrics,
        Vec<PtlTraffic>,
        TraceLog,
        openmpi_core::PvarSnapshot,
        u64,
        Vec<String>,
    );
    let mut setup = setup.clone();
    setup.stack.metrics = true;
    setup.stack.trace = true;
    setup.stack.watchdog_interval = watchdog_interval;
    let collected: Arc<Mutex<Vec<Row>>> = Arc::new(Mutex::new(Vec::new()));
    let cluster: Arc<Mutex<Option<ompi_rte::ClusterReport>>> = Arc::new(Mutex::new(None));
    let c2 = collected.clone();
    let cl2 = cluster.clone();
    let report = setup
        .universe()
        .run_world(ranks, Placement::RoundRobin, move |mpi| {
            let w = mpi.world();
            let sbuf = mpi.alloc(len.max(1));
            let rbuf = mpi.alloc(len.max(1));
            mpi.write(&sbuf, 0, &pattern(len, mpi.rank() as u8));
            for _ in 0..iters {
                if mpi.rank() == 0 {
                    for peer in 1..ranks {
                        mpi.send(&w, peer, 0, &sbuf, len);
                        mpi.recv(&w, peer as i32, 0, &rbuf, len);
                    }
                } else {
                    mpi.recv(&w, 0, 0, &rbuf, len);
                    mpi.send(&w, 0, 0, &sbuf, len);
                }
            }
            mpi.barrier(&w);
            let ep = mpi.endpoint();
            let snap = openmpi_core::pvar_snapshot(ep);
            ep.rte.pvar_publish(mpi.proc(), ep.name, &snap.vars);
            if mpi.rank() == 0 {
                let per_rank = ep.rte.pvar_collect(mpi.proc(), ep.name.job);
                *cl2.lock() = Some(ompi_rte::ClusterReport::build(&per_rank));
            }
            let (stalls, diags) = {
                let ins = ep.introspect.lock();
                (
                    ins.stalls_detected,
                    ins.diagnostics.iter().map(|d| d.to_json()).collect(),
                )
            };
            c2.lock().push((
                mpi.rank() as u32,
                ep.metrics_snapshot(),
                ep.ptls.lock().traffic(),
                ep.trace.lock().clone(),
                snap,
                stalls,
                diags,
            ));
        });
    let mut rows = std::mem::take(&mut *collected.lock());
    rows.sort_by_key(|(r, ..)| *r);
    let telemetry = Telemetry {
        per_rank: rows.iter().map(|(_, m, ..)| m.clone()).collect(),
        traffic: rows.iter().map(|(_, _, t, ..)| t.clone()).collect(),
        traces: rows
            .iter()
            .map(|(r, _, _, log, ..)| (*r, log.clone()))
            .collect(),
        report,
    };
    let introspect = IntrospectReport {
        cluster: cluster.lock().take().expect("rank 0 built the report"),
        snapshots: rows.iter().map(|(.., s, _, _)| s.clone()).collect(),
        stalls: rows.iter().map(|(.., st, _)| *st).sum(),
        diagnostics: rows.into_iter().flat_map(|(.., d)| d).collect(),
    };
    (telemetry, introspect)
}

/// Everything captured from an instrumented N-to-1 incast: the fabric's
/// own congestion report (per-link busy time, occupancy, queue depths),
/// the cluster-wide pvar aggregation, each rank's raw snapshot, and the
/// hottest rank as named by the `fab.ej.*` pvars.
pub struct CongestionCapture {
    /// The fabric's link-level congestion report at end of run.
    pub congestion: qsnet::CongestionReport,
    /// Min/max/sum per pvar across the job, with straggler identification.
    pub cluster: ompi_rte::ClusterReport,
    /// Each rank's raw pvar snapshot, indexed by rank.
    pub snapshots: Vec<openmpi_core::PvarSnapshot>,
    /// Rank whose ejection link burned the most busy time, per the
    /// `fab.ej.busy_ns` pvar (the incast victim).
    pub hot_rank: usize,
}

impl CongestionCapture {
    /// Name of the hottest link in the fabric report, e.g. `r0.ej.n0`.
    pub fn hot_link(&self) -> Option<String> {
        self.congestion.hottest().map(|l| l.name())
    }

    /// One JSON document: fabric congestion report, hot rank/link, cluster
    /// aggregation, and the raw per-rank snapshots feeding it.
    pub fn to_json(&self) -> String {
        let ranks: Vec<String> = self.snapshots.iter().map(|s| s.to_json()).collect();
        format!(
            "{{\"congestion\":{},\"hot_rank\":{},\"hot_link\":{},\
             \"cluster\":{},\"ranks\":[{}]}}",
            self.congestion.to_json(),
            self.hot_rank,
            self.hot_link()
                .map_or("null".to_string(), |l| format!("\"{l}\"")),
            self.cluster.to_json(),
            ranks.join(",")
        )
    }
}

/// Run an N-to-1 incast (every rank floods rank 0) with the introspection
/// plane active, and capture the fabric's congestion report alongside the
/// pvar view of it. This is the workload where per-link accounting earns
/// its keep: the victim's ejection link carries every sender's traffic, so
/// its busy time is ~(N-1)× any single injection link's.
pub fn incast_congestion(
    setup: &Setup,
    ranks: usize,
    len: usize,
    iters: usize,
    top_n: usize,
) -> CongestionCapture {
    type Row = (u32, openmpi_core::PvarSnapshot);
    let mut setup = setup.clone();
    setup.stack.metrics = true;
    let collected: Arc<Mutex<Vec<Row>>> = Arc::new(Mutex::new(Vec::new()));
    let cluster: Arc<Mutex<Option<ompi_rte::ClusterReport>>> = Arc::new(Mutex::new(None));
    let fabric: Arc<Mutex<Option<Arc<qsnet::Fabric>>>> = Arc::new(Mutex::new(None));
    let (c2, cl2, f2) = (collected.clone(), cluster.clone(), fabric.clone());
    let report = setup
        .universe()
        .run_world(ranks, Placement::RoundRobin, move |mpi| {
            let w = mpi.world();
            if mpi.rank() == 0 {
                let rbuf = mpi.alloc(len.max(1));
                for _ in 0..iters {
                    for _ in 1..ranks {
                        mpi.recv(&w, openmpi_core::ANY_SOURCE, 0, &rbuf, len);
                    }
                }
            } else {
                let sbuf = mpi.alloc(len.max(1));
                mpi.write(&sbuf, 0, &pattern(len, mpi.rank() as u8));
                for _ in 0..iters {
                    mpi.send(&w, 0, 0, &sbuf, len);
                }
            }
            mpi.barrier(&w);
            let ep = mpi.endpoint();
            let snap = openmpi_core::pvar_snapshot(ep);
            ep.rte.pvar_publish(mpi.proc(), ep.name, &snap.vars);
            if mpi.rank() == 0 {
                let per_rank = ep.rte.pvar_collect(mpi.proc(), ep.name.job);
                *cl2.lock() = Some(ompi_rte::ClusterReport::build(&per_rank));
                *f2.lock() = Some(ep.cluster.fabric().clone());
            }
            c2.lock().push((mpi.rank() as u32, snap));
        });
    let mut rows = std::mem::take(&mut *collected.lock());
    rows.sort_by_key(|(r, _)| *r);
    let hot_rank = rows
        .iter()
        .max_by_key(|(_, s)| s.get("fab.ej.busy_ns").unwrap_or(0))
        .map(|(r, _)| *r as usize)
        .unwrap_or(0);
    let fabric = fabric.lock().take().expect("rank 0 captured the fabric");
    let cluster = cluster.lock().take().expect("rank 0 built the report");
    CongestionCapture {
        congestion: fabric.congestion_report(report.end_time, top_n),
        cluster,
        snapshots: rows.into_iter().map(|(_, s)| s).collect(),
        hot_rank,
    }
}

/// One flow-control scenario's observables: completion time, message rate,
/// the victim's ejection-link peak queue depth, and the flow/pool counters
/// that explain the difference between the flow-off and flow-on runs.
#[derive(Clone, Debug)]
pub struct FlowScenario {
    /// Scenario label, e.g. `incast.off`.
    pub name: String,
    /// Virtual end time of the whole run, ns.
    pub completion_ns: u64,
    /// Messages delivered (receives completed) across the job.
    pub msgs: u64,
    /// Delivered messages per virtual second.
    pub msgs_per_sec: f64,
    /// Peak queue depth on the victim's ejection link (rank 0's node).
    pub victim_ej_queue_peak: u64,
    /// Bounce-pool misses: unexpected payloads that fell back to a charged
    /// per-message allocation.
    pub pool_fallbacks: u64,
    /// Bounce-pool hits.
    pub pool_hits: u64,
    /// Sends parked on zero credits.
    pub sends_queued: u64,
    /// Explicit credit-return frames (piggybacks excluded).
    pub credit_frames: u64,
    /// Credit grants deferred because the ejection queue was backed up.
    pub grant_deferrals: u64,
    /// QDMA deposits that found the destination queue full and retried.
    pub qdma_overflows: u64,
}

impl FlowScenario {
    fn to_json(&self) -> String {
        format!(
            "{{\"name\":\"{}\",\"completion_ns\":{},\"msgs\":{},\
             \"msgs_per_sec\":{:.1},\"victim_ej_queue_peak\":{},\
             \"pool_fallbacks\":{},\"pool_hits\":{},\"sends_queued\":{},\
             \"credit_frames\":{},\"grant_deferrals\":{},\"qdma_overflows\":{}}}",
            self.name,
            self.completion_ns,
            self.msgs,
            self.msgs_per_sec,
            self.victim_ej_queue_peak,
            self.pool_fallbacks,
            self.pool_hits,
            self.sends_queued,
            self.credit_frames,
            self.grant_deferrals,
            self.qdma_overflows,
        )
    }
}

/// The traffic pattern a flow-control scenario drives.
#[derive(Copy, Clone, Debug)]
pub enum FlowWorkload {
    /// Ranks 1..N each flood `msgs` eager messages at rank 0, which sits in
    /// compute for `delay_ns` first — every message arrives unexpected and
    /// stages in the bounce pool.
    Incast { msgs: usize, delay_ns: u64 },
    /// Every rank sends `msgs` eager messages to every other rank.
    AllToAll { msgs: usize },
    /// Rank 1 floods `msgs` unexpected eager messages at a rank 0 that only
    /// starts receiving after `delay_ns` — the single-sender pool-exhaustion
    /// case.
    Flood { msgs: usize, delay_ns: u64 },
}

/// Run one flow-control scenario and capture its observables.
pub fn flow_scenario(
    setup: &Setup,
    ranks: usize,
    len: usize,
    flow_on: bool,
    workload: FlowWorkload,
) -> FlowScenario {
    let mut setup = setup.clone();
    setup.stack.metrics = true;
    setup.stack.flow_enable = flow_on;
    let metrics: Arc<Mutex<Vec<Metrics>>> = Arc::new(Mutex::new(Vec::new()));
    let victim_peak = Arc::new(AtomicU64::new(0));
    let delivered = Arc::new(AtomicU64::new(0));
    let overflows = Arc::new(AtomicU64::new(0));
    let (m2, v2, d2, o2) = (
        metrics.clone(),
        victim_peak.clone(),
        delivered.clone(),
        overflows.clone(),
    );
    let report = setup
        .universe()
        .run_world(ranks, Placement::RoundRobin, move |mpi| {
            let w = mpi.world();
            match workload {
                FlowWorkload::Incast { msgs, delay_ns }
                | FlowWorkload::Flood { msgs, delay_ns } => {
                    let senders = match workload {
                        FlowWorkload::Flood { .. } => 1,
                        _ => ranks - 1,
                    };
                    if mpi.rank() == 0 {
                        mpi.compute(Dur::from_ns(delay_ns));
                        let rbuf = mpi.alloc(len.max(1));
                        for _ in 0..senders * msgs {
                            mpi.recv(&w, openmpi_core::ANY_SOURCE, 0, &rbuf, len);
                            d2.fetch_add(1, Ordering::Relaxed);
                        }
                        mpi.free(rbuf);
                    } else if mpi.rank() <= senders {
                        let sbuf = mpi.alloc(len.max(1));
                        mpi.write(&sbuf, 0, &pattern(len, mpi.rank() as u8));
                        let reqs: Vec<_> =
                            (0..msgs).map(|_| mpi.isend(&w, 0, 0, &sbuf, len)).collect();
                        mpi.waitall(reqs);
                        mpi.free(sbuf);
                    }
                }
                FlowWorkload::AllToAll { msgs } => {
                    let sbuf = mpi.alloc(len.max(1));
                    let rbuf = mpi.alloc(len.max(1));
                    mpi.write(&sbuf, 0, &pattern(len, mpi.rank() as u8));
                    let reqs: Vec<_> = (0..ranks)
                        .filter(|&dst| dst != mpi.rank())
                        .flat_map(|dst| (0..msgs).map(move |_| (dst, 0)))
                        .map(|(dst, tag)| mpi.isend(&w, dst, tag, &sbuf, len))
                        .collect();
                    for _ in 0..(ranks - 1) * msgs {
                        mpi.recv(&w, openmpi_core::ANY_SOURCE, 0, &rbuf, len);
                        d2.fetch_add(1, Ordering::Relaxed);
                    }
                    mpi.waitall(reqs);
                    mpi.free(sbuf);
                    mpi.free(rbuf);
                }
            }
            mpi.barrier(&w);
            let ep = mpi.endpoint();
            if mpi.rank() == 0 {
                let (_, ej) = ep.cluster.fabric().node_link_totals(ep.node);
                v2.store(ej.queue_peak, Ordering::SeqCst);
                o2.store(ep.cluster.stats().queue_overflows, Ordering::SeqCst);
            }
            m2.lock().push(ep.metrics_snapshot());
        });
    let rows = std::mem::take(&mut *metrics.lock());
    let sum = |f: fn(&openmpi_core::metrics::Counters) -> u64| -> u64 {
        rows.iter().map(|m| f(&m.counters)).sum()
    };
    let completion_ns = report.end_time.as_ns();
    let msgs = delivered.load(Ordering::SeqCst);
    let name = format!(
        "{}.{}",
        match workload {
            FlowWorkload::Incast { .. } => "incast",
            FlowWorkload::AllToAll { .. } => "alltoall",
            FlowWorkload::Flood { .. } => "flood",
        },
        if flow_on { "on" } else { "off" }
    );
    FlowScenario {
        name,
        completion_ns,
        msgs,
        msgs_per_sec: if completion_ns == 0 {
            0.0
        } else {
            msgs as f64 * 1e9 / completion_ns as f64
        },
        victim_ej_queue_peak: victim_peak.load(Ordering::SeqCst),
        pool_fallbacks: sum(|c| c.flow_pool_fallbacks),
        pool_hits: sum(|c| c.flow_pool_hits),
        sends_queued: sum(|c| c.flow_sends_queued),
        credit_frames: sum(|c| c.flow_credit_frames),
        grant_deferrals: sum(|c| c.flow_grant_deferrals),
        qdma_overflows: overflows.load(Ordering::SeqCst),
    }
}

/// The full flow-control benchmark: three congestion scenarios, each run
/// with flow control off and on, plus the uncongested ping-pong that prices
/// the credit machinery's overhead.
pub struct FlowBenchReport {
    /// N-to-1 incast, `(off, on)`.
    pub incast: (FlowScenario, FlowScenario),
    /// All-to-all burst, `(off, on)`.
    pub alltoall: (FlowScenario, FlowScenario),
    /// Single-sender unexpected-message flood, `(off, on)`.
    pub flood: (FlowScenario, FlowScenario),
    /// 1 KiB half-RTT with flow control off, µs.
    pub pingpong_off_us: f64,
    /// 1 KiB half-RTT with flow control on, µs.
    pub pingpong_on_us: f64,
}

impl FlowBenchReport {
    /// Flow-on ping-pong latency as a fraction of flow-off (1.0 = free).
    pub fn pingpong_ratio(&self) -> f64 {
        if self.pingpong_off_us == 0.0 {
            1.0
        } else {
            self.pingpong_on_us / self.pingpong_off_us
        }
    }

    pub fn to_json(&self) -> String {
        let pair = |p: &(FlowScenario, FlowScenario)| {
            format!("{{\"off\":{},\"on\":{}}}", p.0.to_json(), p.1.to_json())
        };
        format!(
            "{{\"incast\":{},\"alltoall\":{},\"flood\":{},\
             \"pingpong_off_us\":{:.3},\"pingpong_on_us\":{:.3},\
             \"pingpong_ratio\":{:.4}}}",
            pair(&self.incast),
            pair(&self.alltoall),
            pair(&self.flood),
            self.pingpong_off_us,
            self.pingpong_on_us,
            self.pingpong_ratio(),
        )
    }
}

/// Run the whole flow-control benchmark on the paper testbed.
pub fn flow_bench(setup: &Setup) -> FlowBenchReport {
    let incast = FlowWorkload::Incast {
        msgs: 48,
        delay_ns: 400_000,
    };
    let alltoall = FlowWorkload::AllToAll { msgs: 12 };
    let flood = FlowWorkload::Flood {
        msgs: 256,
        delay_ns: 400_000,
    };
    let run = |flow_on: bool, wl: FlowWorkload| flow_scenario(setup, 8, 1 << 10, flow_on, wl);
    let mut off = setup.clone();
    off.stack.flow_enable = false;
    let mut on = setup.clone();
    on.stack.flow_enable = true;
    FlowBenchReport {
        incast: (run(false, incast), run(true, incast)),
        alltoall: (run(false, alltoall), run(true, alltoall)),
        flood: (run(false, flood), run(true, flood)),
        pingpong_off_us: ompi_latency(&off, 1 << 10),
        pingpong_on_us: ompi_latency(&on, 1 << 10),
    }
}

/// Everything captured from a critical-path instrumented run: the merged
/// per-message stage decomposition and the raw per-rank trace rings (for
/// the cross-rank Chrome trace).
pub struct CritPathCapture {
    /// Per-message and per-size-bucket stage breakdown.
    pub report: openmpi_core::CritPathReport,
    /// Per-rank trace rings (rank, log), feeding the merged Chrome trace.
    pub traces: Vec<(u32, TraceLog)>,
}

impl CritPathCapture {
    /// All ranks' spans merged into one Chrome trace-event JSON document,
    /// with cross-rank flow arrows linking sender and receiver spans.
    pub fn chrome_trace(&self) -> String {
        let refs: Vec<(u32, &TraceLog)> = self.traces.iter().map(|(r, l)| (*r, l)).collect();
        openmpi_core::chrome_trace_json(&refs)
    }

    /// The critical-path report as JSON.
    pub fn to_json(&self) -> String {
        self.report.to_json()
    }
}

/// Run a 2-rank ping-pong with tracing and fabric busy-interval recording
/// on, merge both ranks' trace rings by gid, and decompose each message's
/// end-to-end latency into named protocol stages. At 1 MiB with pipelining
/// this shows where the rendezvous actually spends its time: match wait,
/// handshake, wire occupancy, registration the pipeline failed to hide,
/// and the FIN exchange.
pub fn critpath_pingpong(setup: &Setup, len: usize, iters: usize) -> CritPathCapture {
    type Row = (u32, TraceLog, Vec<(u64, u64)>);
    let mut setup = setup.clone();
    setup.stack.metrics = true;
    setup.stack.trace = true;
    let uni = setup.universe();
    // Record link busy windows from t=0 so the wire stages can be
    // cross-checked against what the ejection link actually serialized.
    uni.cluster.fabric().record_intervals(1 << 16);
    let collected: Arc<Mutex<Vec<Row>>> = Arc::new(Mutex::new(Vec::new()));
    let c2 = collected.clone();
    uni.run_world(2, Placement::RoundRobin, move |mpi| {
        let w = mpi.world();
        let sbuf = mpi.alloc(len.max(1));
        let rbuf = mpi.alloc(len.max(1));
        mpi.write(&sbuf, 0, &pattern(len, mpi.rank() as u8));
        for _ in 0..iters {
            if mpi.rank() == 0 {
                mpi.send(&w, 1, 0, &sbuf, len);
                mpi.recv(&w, 1, 0, &rbuf, len);
            } else {
                mpi.recv(&w, 0, 0, &rbuf, len);
                mpi.send(&w, 0, 0, &sbuf, len);
            }
        }
        mpi.barrier(&w);
        let ep = mpi.endpoint();
        let (_inj, ej) = ep.cluster.fabric().node_busy_intervals(ep.node);
        c2.lock()
            .push((mpi.rank() as u32, ep.trace.lock().clone(), ej));
    });
    let mut rows = std::mem::take(&mut *collected.lock());
    rows.sort_by_key(|(r, ..)| *r);
    let ej_busy: Vec<(u32, Vec<(u64, u64)>)> =
        rows.iter().map(|(r, _, ej)| (*r, ej.clone())).collect();
    let traces: Vec<(u32, TraceLog)> = rows.into_iter().map(|(r, l, _)| (r, l)).collect();
    let refs: Vec<(u32, &TraceLog)> = traces.iter().map(|(r, l)| (*r, l)).collect();
    let report = openmpi_core::critpath::analyze(&refs, &ej_busy);
    CritPathCapture { report, traces }
}

/// Everything captured from a timeline-sampled incast: each rank's retained
/// sample ring and the victim rank (the incast target).
pub struct TimelineCapture {
    /// Per-rank `(rank, dropped, samples)` rows, ordered by rank.
    pub ranks: Vec<(u32, u64, Vec<openmpi_core::introspect::TimelineSample>)>,
    /// The incast target whose ejection queue the samples should show
    /// ramping (always rank 0 for this workload).
    pub victim: usize,
}

impl TimelineCapture {
    /// The victim rank's samples, oldest first.
    pub fn victim_samples(&self) -> &[openmpi_core::introspect::TimelineSample] {
        &self.ranks[self.victim].2
    }

    /// Peak ejection-link queue depth the victim's samples observed.
    pub fn victim_max_ej_queue(&self) -> u64 {
        self.victim_samples()
            .iter()
            .map(|s| s.ej_queue)
            .max()
            .unwrap_or(0)
    }

    /// One JSON document: the victim rank plus every rank's timeline.
    pub fn to_json(&self) -> String {
        let rows: Vec<String> = self
            .ranks
            .iter()
            .map(|(rank, dropped, samples)| {
                let s: Vec<String> = samples.iter().map(|s| s.to_json()).collect();
                format!(
                    "{{\"rank\":{},\"dropped\":{},\"samples\":[{}]}}",
                    rank,
                    dropped,
                    s.join(",")
                )
            })
            .collect();
        format!(
            "{{\"victim\":{},\"ranks\":[{}]}}",
            self.victim,
            rows.join(",")
        )
    }
}

/// Run an N-to-1 incast with the periodic timeline sampler on (interval
/// `sample_ns` of virtual time) and collect every rank's sample ring. The
/// victim's `ej_queue` series shows the congestion building as every
/// sender's traffic converges on one ejection link — the time-series view
/// of what `incast_congestion` reports as end-of-run totals.
pub fn timeline_incast(setup: &Setup, ranks: usize, len: usize, iters: usize) -> TimelineCapture {
    type Row = (u32, u64, Vec<openmpi_core::introspect::TimelineSample>);
    let mut setup = setup.clone();
    setup.stack.metrics = true;
    // Sample roughly every wire-time of one message so the ramp is visible.
    let sample_ns = (len as u64).max(1_000) / 3;
    setup.stack.timeline_interval = Dur::from_ns(sample_ns);
    let collected: Arc<Mutex<Vec<Row>>> = Arc::new(Mutex::new(Vec::new()));
    let c2 = collected.clone();
    setup
        .universe()
        .run_world(ranks, Placement::RoundRobin, move |mpi| {
            let w = mpi.world();
            if mpi.rank() == 0 {
                let rbuf = mpi.alloc(len.max(1));
                for _ in 0..iters {
                    for _ in 1..ranks {
                        mpi.recv(&w, openmpi_core::ANY_SOURCE, 0, &rbuf, len);
                    }
                }
            } else {
                let sbuf = mpi.alloc(len.max(1));
                mpi.write(&sbuf, 0, &pattern(len, mpi.rank() as u8));
                for _ in 0..iters {
                    mpi.send(&w, 0, 0, &sbuf, len);
                }
            }
            mpi.barrier(&w);
            let ep = mpi.endpoint();
            let tl = ep.timeline.lock();
            c2.lock().push((
                mpi.rank() as u32,
                tl.dropped(),
                tl.samples().cloned().collect(),
            ));
        });
    let mut rows = std::mem::take(&mut *collected.lock());
    rows.sort_by_key(|(r, ..)| *r);
    TimelineCapture {
        ranks: rows,
        victim: 0,
    }
}

/// Boot a 1-rank world and dump its full control/performance-variable
/// registry (name, type, default, writability, live value, description)
/// as one JSON document — the MPI_T-style discovery surface.
pub fn introspect_registry(setup: &Setup) -> String {
    let out: Arc<Mutex<String>> = Arc::new(Mutex::new(String::new()));
    let o2 = out.clone();
    setup
        .universe()
        .run_world(1, Placement::RoundRobin, move |mpi| {
            *o2.lock() = openmpi_core::introspect::registry_json(mpi.endpoint());
        });
    let v = std::mem::take(&mut *out.lock());
    v
}

/// What the forced-stall demonstration recovers after the watchdog abort:
/// the panic message, the structured diagnostics, and the flight-recorder
/// dumps frozen at detection time.
pub struct StallFlightDemo {
    /// The watchdog's rendered panic message.
    pub panic_msg: String,
    /// Structured stall diagnostics (JSON objects, flight ring embedded).
    pub diagnostics: Vec<String>,
    /// Flight-recorder dumps (JSON objects) recorded on the stall.
    pub flight_dumps: Vec<String>,
}

impl StallFlightDemo {
    /// One JSON document bundling the post-mortem.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"demo\":\"stall_flight\",\"panic\":\"{}\",\
             \"diagnostics\":[{}],\"flight_dumps\":[{}]}}",
            openmpi_core::trace::escape_json(&self.panic_msg),
            self.diagnostics.join(","),
            self.flight_dumps.join(",")
        )
    }
}

/// Force a rendezvous stall (drop the lone FIN_ACK with the reliability
/// layer disabled, TCP-only) and recover the post-mortem: the watchdog
/// aborts the run, and the flight recorder's ring — dumped automatically at
/// detection — shows the protocol events leading up to the wedge.
pub fn stall_flight_demo() -> StallFlightDemo {
    let stack = StackConfig {
        inline_first_frag: true,
        tcp_reliability: false,
        watchdog_interval: 8,
        watchdog_grace: 4,
        ..StackConfig::best()
    };
    let uni = Universe::new(
        NicConfig::default(),
        FabricConfig::default(),
        stack,
        Transports {
            elan_rails: 0,
            tcp: true,
        },
    );
    uni.tcp_net
        .inject_drop(openmpi_core::hdr::HdrType::FinAck, 1);
    type Captured = Vec<(u32, Arc<openmpi_core::Endpoint>)>;
    let eps: Arc<Mutex<Captured>> = Arc::new(Mutex::new(Vec::new()));
    let e2 = eps.clone();
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        uni.run_world(2, Placement::RoundRobin, move |mpi| {
            e2.lock().push((mpi.rank() as u32, mpi.endpoint().clone()));
            let w = mpi.world();
            let len = 64 << 10;
            let buf = mpi.alloc(len);
            if mpi.rank() == 0 {
                mpi.send(&w, 1, 7, &buf, len);
            } else {
                mpi.recv(&w, 0, 7, &buf, len);
            }
            mpi.free(buf);
        });
    }));
    let panic_msg = match result {
        Ok(_) => String::new(),
        Err(p) => p
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "non-string panic".to_string()),
    };
    let mut rows = std::mem::take(&mut *eps.lock());
    rows.sort_by_key(|(r, _)| *r);
    let mut diagnostics = Vec::new();
    let mut flight_dumps = Vec::new();
    for (_, ep) in &rows {
        let ins = ep.introspect.lock();
        diagnostics.extend(ins.diagnostics.iter().map(|d| d.to_json()));
        flight_dumps.extend(ins.flight_dumps.iter().cloned());
    }
    StallFlightDemo {
        panic_msg,
        diagnostics,
        flight_dumps,
    }
}

/// The simulator's own speed on a fixed reference workload.
pub struct SimBenchReport {
    /// World size of the reference workload.
    pub ranks: usize,
    /// Message length of the reference workload.
    pub len: usize,
    /// Ping-pong iterations of the reference workload.
    pub iters: usize,
    /// The kernel's report for the measured (calendar-queue, warm) run.
    pub report: qsim::Report,
    /// Schedule fingerprints agree across a repeat calendar run and the
    /// reference `BTreeMap`-queue run: same `(end_time, events_processed,
    /// schedule_hash, ...)` for the same program.
    pub determinism_ok: bool,
    /// Wall time of the reference BTree-queue run (for old-vs-new
    /// comparison in the profile JSON; cold-start noise included).
    pub btree_wall_ns: u64,
}

/// The determinism fingerprint of a run: everything in the kernel report
/// except wall-clock time.
fn schedule_fingerprint(r: &qsim::Report) -> (u64, u64, u64, u64, u64, u64, u64) {
    (
        r.end_time.as_ns(),
        r.events_processed,
        r.schedule_hash,
        r.wakes_executed,
        r.calls_executed,
        r.stale_wakes,
        r.sched_past,
    )
}

impl SimBenchReport {
    /// One JSON document: the kernel profile as a trackable baseline.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"bench\":\"sim_profile\",\"ranks\":{},\"len\":{},\"iters\":{},\
             \"end_time_ns\":{},\"events_processed\":{},\"wakes_executed\":{},\
             \"calls_executed\":{},\"stale_wakes\":{},\"sched_past\":{},\
             \"schedule_hash\":\"{:#018x}\",\"determinism_ok\":{},\
             \"procs_spawned\":{},\"max_queue_depth\":{},\
             \"wall_ns\":{},\"btree_wall_ns\":{},\"events_per_sec\":{:.1}}}",
            self.ranks,
            self.len,
            self.iters,
            self.report.end_time.as_ns(),
            self.report.events_processed,
            self.report.wakes_executed,
            self.report.calls_executed,
            self.report.stale_wakes,
            self.report.sched_past,
            self.report.schedule_hash,
            self.determinism_ok,
            self.report.procs_spawned,
            self.report.max_queue_depth,
            self.report.wall_ns,
            self.btree_wall_ns,
            self.report.events_per_sec()
        )
    }
}

/// Benchmark the discrete-event kernel itself: an uninstrumented reference
/// ping-pong whose event count is deterministic, timed in wall clock. The
/// events-per-second figure is the baseline CI tracks for simulator
/// regressions.
///
/// Three runs of the identical program: first on the reference
/// `BTreeMap` queue, then twice on the calendar queue. The first two double
/// as warm-up (scheduler and allocator cold-start would otherwise dominate
/// a single ~5 ms run) and as the determinism cross-check — all three must
/// produce bit-identical schedule fingerprints; the last calendar run is
/// the timed one.
pub fn sim_bench(setup: &Setup, ranks: usize, len: usize, iters: usize) -> SimBenchReport {
    let run = |kind: qsim::QueueKind| -> qsim::Report {
        qsim::set_default_queue_kind(kind);
        let report = setup
            .universe()
            .run_world(ranks, Placement::RoundRobin, move |mpi| {
                let w = mpi.world();
                let sbuf = mpi.alloc(len.max(1));
                let rbuf = mpi.alloc(len.max(1));
                mpi.write(&sbuf, 0, &pattern(len, mpi.rank() as u8));
                for _ in 0..iters {
                    if mpi.rank() == 0 {
                        for peer in 1..ranks {
                            mpi.send(&w, peer, 0, &sbuf, len);
                            mpi.recv(&w, peer as i32, 0, &rbuf, len);
                        }
                    } else {
                        mpi.recv(&w, 0, 0, &rbuf, len);
                        mpi.send(&w, 0, 0, &sbuf, len);
                    }
                }
                mpi.barrier(&w);
            });
        qsim::set_default_queue_kind(qsim::QueueKind::Calendar);
        report
    };
    let reference = run(qsim::QueueKind::BTree);
    let repeat = run(qsim::QueueKind::Calendar);
    let report = run(qsim::QueueKind::Calendar);
    let determinism_ok = schedule_fingerprint(&report) == schedule_fingerprint(&reference)
        && schedule_fingerprint(&report) == schedule_fingerprint(&repeat);
    SimBenchReport {
        ranks,
        len,
        iters,
        report,
        determinism_ok,
        btree_wall_ns: reference.wall_ns,
    }
}

/// One point of a [`rank_sweep`].
pub struct RankSweepPoint {
    /// World size of this point.
    pub ranks: usize,
    /// Kernel report for the run.
    pub report: qsim::Report,
}

/// Wall-clock-budgeted scaling sweep: a fixed number of barrier rounds at
/// growing world sizes (one OS thread per rank — the point is that the
/// kernel makes thousand-rank collectives routine, not heroic).
pub struct RankSweepReport {
    /// Barrier rounds per point.
    pub iters: usize,
    /// The wall-clock budget the whole sweep must fit in, in milliseconds.
    pub budget_ms: u64,
    /// Total wall time actually spent, in milliseconds.
    pub total_wall_ms: f64,
    /// The per-world-size results.
    pub points: Vec<RankSweepPoint>,
}

impl RankSweepReport {
    /// Whether the sweep finished inside its wall-clock budget.
    pub fn within_budget(&self) -> bool {
        self.total_wall_ms <= self.budget_ms as f64
    }

    /// One JSON document: events/s and wall time per world size.
    pub fn to_json(&self) -> String {
        let points: Vec<String> = self
            .points
            .iter()
            .map(|p| {
                format!(
                    "{{\"ranks\":{},\"events_processed\":{},\"wakes_executed\":{},\
                     \"stale_wakes\":{},\"end_time_ns\":{},\"wall_ms\":{:.1},\
                     \"events_per_sec\":{:.1}}}",
                    p.ranks,
                    p.report.events_processed,
                    p.report.wakes_executed,
                    p.report.stale_wakes,
                    p.report.end_time.as_ns(),
                    p.report.wall_ns as f64 / 1e6,
                    p.report.events_per_sec()
                )
            })
            .collect();
        format!(
            "{{\"bench\":\"rank_sweep\",\"iters\":{},\"budget_ms\":{},\
             \"total_wall_ms\":{:.1},\"within_budget\":{},\"points\":[{}]}}",
            self.iters,
            self.budget_ms,
            self.total_wall_ms,
            self.within_budget(),
            points.join(",")
        )
    }
}

/// Run `iters` barrier rounds at each world size in `rank_counts`, sizing
/// the fabric to the world (one node per rank), and check the whole sweep
/// fits in `budget_ms` of wall clock.
pub fn rank_sweep(
    setup: &Setup,
    rank_counts: &[usize],
    iters: usize,
    budget_ms: u64,
) -> RankSweepReport {
    let mut points = Vec::new();
    let mut total_wall_ns = 0u64;
    for &ranks in rank_counts {
        let mut setup = setup.clone();
        setup.fabric.nodes = ranks;
        let report = setup
            .universe()
            .run_world(ranks, Placement::RoundRobin, move |mpi| {
                let w = mpi.world();
                for _ in 0..iters {
                    mpi.barrier(&w);
                }
            });
        total_wall_ns += report.wall_ns;
        points.push(RankSweepPoint { ranks, report });
    }
    RankSweepReport {
        iters,
        budget_ms,
        total_wall_ms: total_wall_ns as f64 / 1e6,
        points,
    }
}

/// One measured cell of the collective-latency curve: a collective at a
/// world size, timed twice — host-driven trees vs the NIC-resident event
/// program.
pub struct CollCurvePoint {
    /// World size of this point.
    pub ranks: usize,
    /// Which collective: `"barrier"`, `"bcast"`, or `"allreduce"`.
    pub coll: &'static str,
    /// Mean per-operation completion latency on the host-driven path, µs.
    pub host_us: f64,
    /// Same workload with `coll.nic_offload` on, µs.
    pub nic_us: f64,
}

impl CollCurvePoint {
    /// Host latency over NIC latency — above 1.0 the offload pays.
    pub fn speedup(&self) -> f64 {
        if self.nic_us > 0.0 {
            self.host_us / self.nic_us
        } else {
            f64::INFINITY
        }
    }
}

/// The collective-offload scaling curve: barrier, bcast, and allreduce at
/// each world size, NIC-offloaded vs host-driven (the CI artifact
/// `BENCH_coll.json`).
pub struct CollCurveReport {
    /// Payload bytes per bcast / allreduce (barrier carries none).
    pub payload: usize,
    /// Timed operations per cell (after warm-up).
    pub iters: usize,
    /// One entry per (world size, collective) pair.
    pub points: Vec<CollCurvePoint>,
    /// Total wall time spent measuring, in milliseconds.
    pub total_wall_ms: f64,
}

impl CollCurveReport {
    /// Look up the cell for a world size and collective name.
    pub fn point(&self, ranks: usize, coll: &str) -> Option<&CollCurvePoint> {
        self.points
            .iter()
            .find(|p| p.ranks == ranks && p.coll == coll)
    }

    /// One JSON document: both series per collective per world size.
    pub fn to_json(&self) -> String {
        let points: Vec<String> = self
            .points
            .iter()
            .map(|p| {
                format!(
                    "{{\"ranks\":{},\"coll\":\"{}\",\"host_us\":{:.3},\
                     \"nic_us\":{:.3},\"speedup\":{:.3}}}",
                    p.ranks,
                    p.coll,
                    p.host_us,
                    p.nic_us,
                    p.speedup()
                )
            })
            .collect();
        format!(
            "{{\"bench\":\"coll_curve\",\"payload\":{},\"iters\":{},\
             \"total_wall_ms\":{:.1},\"points\":[{}]}}",
            self.payload,
            self.iters,
            self.total_wall_ms,
            points.join(",")
        )
    }
}

/// Time barrier, bcast, and allreduce in one world: each phase warms up
/// (which also builds and caches the NIC program, keeping the one-time
/// event-table exchange out of the timed region), syncs, then runs `iters`
/// operations. Completion is the *slowest* rank's elapsed time — for a
/// broadcast the root returns as soon as the NIC accepts the descriptors,
/// so only a leaf sees the true finish.
fn coll_curve_cell(
    setup: &Setup,
    ranks: usize,
    payload: usize,
    iters: usize,
    nic: bool,
) -> [f64; 3] {
    let mut setup = setup.clone();
    setup.fabric.nodes = ranks;
    setup.stack.coll_nic_offload = nic;
    if !nic {
        // Host baseline: binomial trees only, hardware rail off too.
        setup.stack.coll_hw_bcast = false;
    }
    let max_ns: Arc<Vec<AtomicU64>> = Arc::new((0..3).map(|_| AtomicU64::new(0)).collect());
    let m2 = max_ns.clone();
    setup
        .universe()
        .run_world(ranks, Placement::RoundRobin, move |mpi| {
            let w = mpi.world();
            let buf = mpi.alloc(payload.max(1));
            mpi.write(&buf, 0, &pattern(payload, mpi.rank() as u8));

            // Barrier.
            for _ in 0..2 {
                mpi.barrier(&w);
            }
            let t0 = mpi.now();
            for _ in 0..iters {
                mpi.barrier(&w);
            }
            m2[0].fetch_max((mpi.now() - t0).as_ns(), Ordering::SeqCst);

            // Broadcast from rank 0.
            for _ in 0..2 {
                mpi.bcast(&w, 0, &buf, payload);
            }
            mpi.barrier(&w);
            let t0 = mpi.now();
            for _ in 0..iters {
                mpi.bcast(&w, 0, &buf, payload);
            }
            m2[1].fetch_max((mpi.now() - t0).as_ns(), Ordering::SeqCst);

            // Allreduce (commutative sum, NIC-combinable).
            for _ in 0..2 {
                mpi.allreduce(&w, openmpi_core::ReduceOp::SumU64, &buf, payload);
            }
            mpi.barrier(&w);
            let t0 = mpi.now();
            for _ in 0..iters {
                mpi.allreduce(&w, openmpi_core::ReduceOp::SumU64, &buf, payload);
            }
            m2[2].fetch_max((mpi.now() - t0).as_ns(), Ordering::SeqCst);
        });
    let cell = |i: usize| max_ns[i].load(Ordering::SeqCst) as f64 / iters as f64 / 1_000.0;
    [cell(0), cell(1), cell(2)]
}

/// Sweep barrier / bcast / allreduce latency across world sizes, each
/// measured host-driven and NIC-offloaded on an identical fabric.
pub fn coll_curve(
    setup: &Setup,
    rank_counts: &[usize],
    payload: usize,
    iters: usize,
) -> CollCurveReport {
    let start = std::time::Instant::now();
    let mut points = Vec::new();
    for &ranks in rank_counts {
        let host = coll_curve_cell(setup, ranks, payload, iters, false);
        let nic = coll_curve_cell(setup, ranks, payload, iters, true);
        for (i, coll) in ["barrier", "bcast", "allreduce"].into_iter().enumerate() {
            points.push(CollCurvePoint {
                ranks,
                coll,
                host_us: host[i],
                nic_us: nic[i],
            });
        }
    }
    CollCurveReport {
        payload,
        iters,
        points,
        total_wall_ms: start.elapsed().as_secs_f64() * 1e3,
    }
}

/// MPICH-QsNet ping-pong latency in µs.
pub fn mpich_latency(nic: &NicConfig, fabric: &FabricConfig, len: usize) -> f64 {
    let cluster = Cluster::new(nic.clone(), fabric.clone());
    let lat = Arc::new(AtomicU64::new(0));
    let l2 = lat.clone();
    run_mpich(&cluster, 2, MpichConfig::default(), move |r| {
        let sbuf = r.alloc(len.max(1));
        let rbuf = r.alloc(len.max(1));
        r.write(&sbuf, 0, &pattern(len, r.rank() as u8));
        let round = || {
            if r.rank() == 0 {
                r.send(1, 0, &sbuf, len);
                r.recv(1, 0, &rbuf);
            } else {
                r.recv(0, 0, &rbuf);
                r.send(0, 0, &sbuf, len);
            }
        };
        for _ in 0..WARMUP {
            round();
        }
        r.barrier();
        let t0 = r.now();
        for _ in 0..ITERS {
            round();
        }
        if r.rank() == 0 {
            l2.store(
                (r.now() - t0).as_ns() / (2 * ITERS as u64),
                Ordering::SeqCst,
            );
        }
    });
    lat.load(Ordering::SeqCst) as f64 / 1_000.0
}

/// MPICH-QsNet streaming bandwidth in MB/s.
pub fn mpich_bandwidth(
    nic: &NicConfig,
    fabric: &FabricConfig,
    len: usize,
    window: usize,
    reps: usize,
) -> f64 {
    let cluster = Cluster::new(nic.clone(), fabric.clone());
    let bw = Arc::new(Mutex::new(0.0f64));
    let b2 = bw.clone();
    run_mpich(&cluster, 2, MpichConfig::default(), move |r| {
        let bufs: Vec<_> = (0..window).map(|_| r.alloc(len.max(1))).collect();
        let ack = r.alloc(1);
        r.barrier();
        let t0 = r.now();
        for _ in 0..reps {
            if r.rank() == 0 {
                let reqs: Vec<_> = bufs.iter().map(|b| r.isend(1, 0, b, len)).collect();
                for q in &reqs {
                    r.wait(q);
                }
                r.recv(1, 1, &ack);
            } else {
                let reqs: Vec<_> = bufs.iter().map(|b| r.irecv(0, 0, *b)).collect();
                for q in &reqs {
                    r.wait(q);
                }
                r.send(0, 1, &ack, 0);
            }
        }
        if r.rank() == 0 {
            let ns = (r.now() - t0).as_ns();
            *b2.lock() = (len * window * reps) as f64 / (ns as f64 / 1e9) / 1e6;
        }
    });
    let v = *bw.lock();
    v
}

/// Native Quadrics QDMA ping-pong latency (µs) for `len`-byte messages —
/// the baseline of the paper's §6.3 layering analysis.
pub fn qdma_native_latency(nic: &NicConfig, fabric: &FabricConfig, len: usize) -> f64 {
    assert!(len <= 2048);
    let cluster = Cluster::new(nic.clone(), fabric.clone());
    let sim = Simulation::new();
    let lat = Arc::new(AtomicU64::new(0));
    let a = Arc::new(ElanCtx::attach(&cluster, 0).unwrap());
    let b = Arc::new(ElanCtx::attach(&cluster, 1).unwrap());
    let (va, vb) = (a.vpid(), b.vpid());
    let iters = ITERS;
    {
        let lat = lat.clone();
        let a = a.clone();
        sim.spawn("qdma0", move |p| {
            let q = a.create_queue(64, 2048);
            let sig = p.signal();
            q.set_signal(sig.clone());
            // Let the peer set its queue up.
            p.advance(Dur::from_us(5));
            let t0 = p.now();
            for _ in 0..iters {
                a.qdma(&p, 0, vb, elan4::QueueId(0), vec![1u8; len.max(1)], None);
                let _ = q.wait_pop(&p, &sig, a.cluster().cfg().poll_check).unwrap();
            }
            lat.store(
                (p.now() - t0).as_ns() / (2 * iters as u64),
                Ordering::SeqCst,
            );
        });
    }
    {
        sim.spawn("qdma1", move |p| {
            let q = b.create_queue(64, 2048);
            let sig = p.signal();
            q.set_signal(sig.clone());
            for _ in 0..iters {
                let _ = q.wait_pop(&p, &sig, b.cluster().cfg().poll_check).unwrap();
                b.qdma(&p, 0, va, elan4::QueueId(0), vec![2u8; len.max(1)], None);
            }
        });
    }
    sim.run().unwrap();
    lat.load(Ordering::SeqCst) as f64 / 1_000.0
}

/// Latency decomposition for §6.3: `(total, pml_cost, ptl_latency)` in µs.
pub fn layer_decomposition(setup: &Setup, len: usize) -> (f64, f64, f64) {
    let out = Arc::new(Mutex::new((0.0f64, 0.0f64)));
    let o2 = out.clone();
    setup
        .universe()
        .run_world(2, Placement::RoundRobin, move |mpi| {
            let w = mpi.world();
            let sbuf = mpi.alloc(len.max(1));
            let rbuf = mpi.alloc(len.max(1));
            let round = || {
                if mpi.rank() == 0 {
                    mpi.send(&w, 1, 0, &sbuf, len);
                    mpi.recv(&w, 1, 0, &rbuf, len);
                } else {
                    mpi.recv(&w, 0, 0, &rbuf, len);
                    mpi.send(&w, 0, 0, &sbuf, len);
                }
            };
            for _ in 0..WARMUP {
                round();
            }
            mpi.barrier(&w);
            let t0 = mpi.now();
            let n = 50;
            for _ in 0..n {
                round();
            }
            if mpi.rank() == 0 {
                let total = (mpi.now() - t0).as_ns() as f64 / (2 * n) as f64 / 1_000.0;
                let pml = mpi
                    .endpoint()
                    .pml_layer_cost()
                    .map(|d| d.as_us())
                    .unwrap_or(0.0);
                *o2.lock() = (total, pml);
            }
        });
    let (total, pml) = *out.lock();
    (total, pml, total - pml)
}
