//! One function per table/figure of the paper (the per-experiment index of
//! DESIGN.md §4), plus the ablation sweeps.

use elan4::NicConfig;
use openmpi_core::{CompletionMode, ProgressMode, RdmaScheme, StackConfig, Transports};
use qsnet::FabricConfig;

use crate::measure::{
    layer_decomposition, mpich_bandwidth, mpich_latency, ompi_bandwidth, ompi_latency,
    qdma_native_latency, Setup,
};
use crate::report::{sizes_large, sizes_small, Table};

fn rndv_cfg(scheme: RdmaScheme, inline: bool, dtp: bool) -> StackConfig {
    let mut c = StackConfig::best();
    c.scheme = scheme;
    c.inline_first_frag = inline;
    c.use_datatype_engine = dtp;
    c.force_rendezvous = true;
    c
}

/// Fig. 7(a)/(b): basic RDMA read vs. write, with/without inlined first
/// fragment, with/without the datatype engine. The rendezvous path is
/// forced so the RDMA schemes are exercised at every size.
pub fn fig7(sizes: &[usize]) -> Table {
    let mut t = Table::new(
        "Fig. 7: basic RDMA read and write latency",
        "us",
        &[
            "RDMA-Read",
            "Read-NoInline",
            "Read-DTP",
            "RDMA-Write",
            "Write-NoInline",
            "Write-DTP",
        ],
    );
    let cfgs = [
        rndv_cfg(RdmaScheme::Read, true, false),
        rndv_cfg(RdmaScheme::Read, false, false),
        rndv_cfg(RdmaScheme::Read, true, true),
        rndv_cfg(RdmaScheme::Write, true, false),
        rndv_cfg(RdmaScheme::Write, false, false),
        rndv_cfg(RdmaScheme::Write, true, true),
    ];
    for &len in sizes {
        let vals = cfgs
            .iter()
            .map(|c| ompi_latency(&Setup::paper(c.clone()), len))
            .collect();
        t.push(len, vals);
    }
    t
}

pub fn fig7a() -> Table {
    fig7(&[0, 2, 4, 8, 16, 32, 64, 128, 256, 512])
}

pub fn fig7b() -> Table {
    fig7(&[512, 1024, 2048, 4096])
}

/// Fig. 8: chained DMA and shared completion queue. RDMA-read rendezvous;
/// series compare fast chained completion, host-driven FIN_ACK, and the
/// one-queue / two-queue shared completion strategies.
pub fn fig8() -> Table {
    let mut t = Table::new(
        "Fig. 8: chained DMA and shared completion queue",
        "us",
        &["RDMA-Read", "Read-NoChain", "One-Queue", "Two-Queue"],
    );
    let base = rndv_cfg(RdmaScheme::Read, false, false);
    let mut nochain = base.clone();
    nochain.chained_fin = false;
    let mut oneq = base.clone();
    oneq.completion = CompletionMode::SharedQueueCombined;
    let mut twoq = base.clone();
    twoq.completion = CompletionMode::SharedQueueSeparate;
    let cfgs = [base, nochain, oneq, twoq];
    for len in [
        0usize, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384,
    ] {
        let vals = cfgs
            .iter()
            .map(|c| ompi_latency(&Setup::paper(c.clone()), len))
            .collect();
        t.push(len, vals);
    }
    t
}

/// Fig. 9 / §6.3: communication overhead per layer. QDMA latency is the
/// native ping-pong of a `(64+N)`-byte message (the 64-byte Open MPI
/// header); PTL latency is the measured total minus the PML-layer cost.
pub fn fig9() -> Table {
    let mut t = Table::new(
        "Fig. 9: communication cost by layer",
        "us",
        &[
            "QDMA latency(64+N)",
            "PTL latency",
            "PML layer cost",
            "Total",
        ],
    );
    let nic = NicConfig::default();
    let fabric = FabricConfig::default();
    let setup = Setup::paper(StackConfig::best());
    for len in [0usize, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 1984] {
        let qdma = qdma_native_latency(&nic, &fabric, (len + 64).min(2048));
        let (total, pml, ptl) = layer_decomposition(&setup, len);
        t.push(len, vec![qdma, ptl, pml, total]);
    }
    t
}

/// Table 1: thread-based asynchronous progress, RDMA-read rendezvous at
/// 4 B and 4 KB across the four completion strategies.
pub fn table1() -> Table {
    let mut t = Table::new(
        "Table 1: thread-based asynchronous progress (RDMA-Read)",
        "us",
        &["Basic", "Interrupt", "One Thread", "Two Threads"],
    );
    let basic = rndv_cfg(RdmaScheme::Read, false, false);
    let mut irq = basic.clone();
    irq.progress = ProgressMode::Interrupt;
    let mut one = basic.clone();
    one.progress = ProgressMode::OneThread;
    one.completion = CompletionMode::SharedQueueCombined;
    let mut two = basic.clone();
    two.progress = ProgressMode::TwoThreads;
    two.completion = CompletionMode::SharedQueueSeparate;
    let cfgs = [basic, irq, one, two];
    for len in [4usize, 4096] {
        let vals = cfgs
            .iter()
            .map(|c| ompi_latency(&Setup::paper(c.clone()), len))
            .collect();
        t.push(len, vals);
    }
    t
}

fn fig10_cfgs() -> (StackConfig, StackConfig) {
    // "Best options": chained FIN, polling progress without the shared
    // completion queue, rendezvous without inlined data.
    let read = StackConfig::best();
    let mut write = read.clone();
    write.scheme = RdmaScheme::Write;
    (read, write)
}

/// Fig. 10(a)/(b): ping-pong latency, Open MPI (both schemes) vs MPICH.
pub fn fig10_latency(sizes: &[usize]) -> Table {
    let mut t = Table::new(
        "Fig. 10(a/b): latency, Open MPI vs MPICH-QsNetII",
        "us",
        &[
            "MPICH-QsNetII",
            "PTL/Elan4-RDMA-Read",
            "PTL/Elan4-RDMA-Write",
        ],
    );
    let nic = NicConfig::default();
    let fabric = FabricConfig::default();
    let (read, write) = fig10_cfgs();
    for &len in sizes {
        let m = mpich_latency(&nic, &fabric, len);
        let r = ompi_latency(&Setup::paper(read.clone()), len);
        let w = ompi_latency(&Setup::paper(write.clone()), len);
        t.push(len, vec![m, r, w]);
    }
    t
}

pub fn fig10a() -> Table {
    fig10_latency(&sizes_small())
}

pub fn fig10b() -> Table {
    fig10_latency(&sizes_large())
}

/// Fig. 10(c)/(d): streaming bandwidth, Open MPI vs MPICH.
pub fn fig10_bandwidth(sizes: &[usize]) -> Table {
    let mut t = Table::new(
        "Fig. 10(c/d): bandwidth, Open MPI vs MPICH-QsNetII",
        "MB/s",
        &[
            "MPICH-QsNetII",
            "PTL/Elan4-RDMA-Read",
            "PTL/Elan4-RDMA-Write",
        ],
    );
    let nic = NicConfig::default();
    let fabric = FabricConfig::default();
    let (read, write) = fig10_cfgs();
    for &len in sizes {
        let window = (64.min(1 + (1 << 20) / len.max(1))).max(2);
        let reps = 3;
        let m = mpich_bandwidth(&nic, &fabric, len, window, reps);
        let r = ompi_bandwidth(&Setup::paper(read.clone()), len, window, reps);
        let w = ompi_bandwidth(&Setup::paper(write.clone()), len, window, reps);
        t.push(len, vec![m, r, w]);
    }
    t
}

pub fn fig10c() -> Table {
    fig10_bandwidth(&[1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024])
}

pub fn fig10d() -> Table {
    fig10_bandwidth(&sizes_large())
}

// ---------------------------------------------------------------------------
// Ablations beyond the paper (DESIGN.md §4)
// ---------------------------------------------------------------------------

/// Multi-rail striping (the paper's §8 future work): bandwidth with one vs
/// two Elan4 rails.
pub fn multirail() -> Table {
    let mut t = Table::new(
        "Ablation: multi-rail striping bandwidth",
        "MB/s",
        &["1 rail", "2 rails"],
    );
    for len in [4096usize, 16 << 10, 64 << 10, 256 << 10, 1 << 20] {
        let mut vals = Vec::new();
        for rails in [1usize, 2] {
            let fabric = FabricConfig {
                rails: 2,
                ..Default::default()
            };
            let setup = Setup {
                nic: NicConfig::default(),
                fabric,
                stack: StackConfig::best(),
                transports: Transports {
                    elan_rails: rails,
                    tcp: false,
                },
            };
            vals.push(ompi_bandwidth(&setup, len, 8, 3));
        }
        t.push(len, vals);
    }
    t
}

/// Concurrent message striping across Elan4 + TCP (the paper's
/// multi-network goal), vs each alone.
pub fn multinet() -> Table {
    let mut t = Table::new(
        "Ablation: concurrent Elan4 + TCP striping bandwidth",
        "MB/s",
        &["Elan4 only", "TCP only", "Elan4+TCP"],
    );
    for len in [64 << 10, 256 << 10, 1 << 20] {
        let mut vals = Vec::new();
        for (rails, tcp) in [(1usize, false), (0, true), (1, true)] {
            let mut stack = StackConfig::best();
            stack.scheme = RdmaScheme::Write; // push protocol covers TCP
            let setup = Setup {
                nic: NicConfig::default(),
                fabric: FabricConfig::default(),
                stack,
                transports: Transports {
                    elan_rails: rails,
                    tcp,
                },
            };
            vals.push(ompi_bandwidth(&setup, len, 4, 2));
        }
        t.push(len, vals);
    }
    t
}

/// Sensitivity of the eager/rendezvous switchover.
pub fn sweep_rndv_threshold() -> Table {
    let mut t = Table::new(
        "Ablation: rendezvous-threshold sweep (latency at the boundary)",
        "us",
        &["threshold=256", "threshold=1024", "threshold=1984"],
    );
    for len in [128usize, 256, 512, 1024, 1500, 1984] {
        let mut vals = Vec::new();
        for thresh in [256usize, 1024, 1984] {
            let mut c = StackConfig::best();
            c.eager_limit = thresh;
            vals.push(ompi_latency(&Setup::paper(c), len));
        }
        t.push(len, vals);
    }
    t
}

/// Collective performance: hardware broadcast (global address space) vs
/// the binomial tree, across message sizes on the full 8-node testbed.
pub fn coll_bcast() -> Table {
    use openmpi_core::{Placement, Universe};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    fn bcast_us(hw: bool, len: usize) -> f64 {
        let uni = Universe::paper_testbed(StackConfig::best());
        let t = Arc::new(AtomicU64::new(0));
        let t2 = t.clone();
        uni.run_world(8, Placement::RoundRobin, move |mpi| {
            let mut w = mpi.world();
            if !hw {
                w.hw_coll = false;
            }
            let buf = mpi.alloc(len.max(1));
            mpi.barrier(&w);
            let t0 = mpi.now();
            let iters = 10;
            for _ in 0..iters {
                mpi.bcast(&w, 0, &buf, len);
            }
            mpi.barrier(&w);
            if mpi.rank() == 0 {
                t2.store((mpi.now() - t0).as_ns() / iters, Ordering::SeqCst);
            }
        });
        t.load(Ordering::SeqCst) as f64 / 1_000.0
    }

    let mut t = Table::new(
        "Ablation: broadcast on 8 ranks, hardware vs binomial tree",
        "us",
        &["HW bcast", "Binomial tree"],
    );
    for len in [4usize, 256, 1024, 1984, 8192, 65536] {
        t.push(len, vec![bcast_us(true, len), bcast_us(false, len)]);
    }
    t
}

/// One-sided put/get vs two-sided send/recv latency: RMA skips matching,
/// headers, and receiver involvement entirely.
pub fn onesided() -> Table {
    use openmpi_core::{Placement, Universe};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    fn rma_us(len: usize, get: bool) -> f64 {
        let uni = Universe::paper_testbed(StackConfig::best());
        let t = Arc::new(AtomicU64::new(0));
        let t2 = t.clone();
        uni.run_world(2, Placement::RoundRobin, move |mpi| {
            let w = mpi.world();
            let wbuf = mpi.alloc(len.max(8));
            let mut win = mpi.win_create(&w, wbuf);
            let local = mpi.alloc(len.max(8));
            mpi.barrier(&w);
            let t0 = mpi.now();
            let iters = 10;
            for _ in 0..iters {
                if mpi.rank() == 0 {
                    if get {
                        mpi.get(&mut win, 1, 0, &local, 0, len);
                    } else {
                        mpi.put(&mut win, 1, 0, &local, 0, len);
                    }
                }
                mpi.win_fence(&mut win);
            }
            if mpi.rank() == 0 {
                // Subtract the fence (pure barrier) baseline.
                let total = (mpi.now() - t0).as_ns() / iters;
                t2.store(total, Ordering::SeqCst);
            }
            mpi.win_free(win);
        });
        t.load(Ordering::SeqCst) as f64 / 1_000.0
    }

    let mut t = Table::new(
        "Ablation: one-sided put/get epoch vs two-sided send latency",
        "us",
        &["put+fence", "get+fence", "send/recv"],
    );
    for len in [8usize, 1024, 4096, 65536] {
        let send = ompi_latency(&Setup::paper(StackConfig::best()), len);
        t.push(len, vec![rma_us(len, false), rma_us(len, true), send]);
    }
    t
}

/// Application-level scaling: per-step time of the mini-applications on
/// 1, 2, 4 and 8 ranks (communication/computation balance of real
/// workloads on the stack).
pub fn apps_scaling() -> Table {
    use openmpi_core::{Placement, Universe};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    fn stencil_us(ranks: usize) -> f64 {
        let uni = Universe::paper_testbed(StackConfig::best());
        let t = Arc::new(AtomicU64::new(0));
        let t2 = t.clone();
        uni.run_world(ranks, Placement::RoundRobin, move |mpi| {
            let w = mpi.world();
            let cfg = ompi_apps::stencil::StencilConfig {
                rows: 128,
                cols: 64,
                steps: 10,
                ..Default::default()
            };
            mpi.barrier(&w);
            let t0 = mpi.now();
            let _ = ompi_apps::stencil::run(&mpi, &w, &cfg);
            if mpi.rank() == 0 {
                t2.store((mpi.now() - t0).as_ns() / 10, Ordering::SeqCst);
            }
        });
        t.load(Ordering::SeqCst) as f64 / 1_000.0
    }

    fn cg_us(ranks: usize) -> f64 {
        let uni = Universe::paper_testbed(StackConfig::best());
        let t = Arc::new(AtomicU64::new(0));
        let t2 = t.clone();
        uni.run_world(ranks, Placement::RoundRobin, move |mpi| {
            let w = mpi.world();
            let cfg = ompi_apps::cg::CgConfig {
                n: 512,
                max_iters: 50,
                tol: 0.0, // run exactly 50 iterations
            };
            mpi.barrier(&w);
            let t0 = mpi.now();
            let r = ompi_apps::cg::run(&mpi, &w, &cfg);
            if mpi.rank() == 0 {
                t2.store((mpi.now() - t0).as_ns() / r.iters as u64, Ordering::SeqCst);
            }
        });
        t.load(Ordering::SeqCst) as f64 / 1_000.0
    }

    fn ep_us(ranks: usize) -> f64 {
        let uni = Universe::paper_testbed(StackConfig::best());
        let t = Arc::new(AtomicU64::new(0));
        let t2 = t.clone();
        uni.run_world(ranks, Placement::RoundRobin, move |mpi| {
            let w = mpi.world();
            let cfg = ompi_apps::ep::EpConfig::default();
            mpi.barrier(&w);
            let t0 = mpi.now();
            let _ = ompi_apps::ep::run(&mpi, &w, &cfg);
            if mpi.rank() == 0 {
                t2.store((mpi.now() - t0).as_ns(), Ordering::SeqCst);
            }
        });
        t.load(Ordering::SeqCst) as f64 / 1_000.0
    }

    let mut t = Table::new(
        "Ablation: mini-application time vs ranks",
        "us",
        &[
            "stencil 128x64 step",
            "CG n=512 iteration",
            "EP 64Ki pairs total",
        ],
    );
    for ranks in [1usize, 2, 4, 8] {
        t.push(ranks, vec![stencil_us(ranks), cg_us(ranks), ep_us(ranks)]);
    }
    t
}

/// Why asynchronous progress exists (paper §3): overlap of communication
/// and computation. The sender posts a rendezvous-sized isend under the
/// RDMA-*write* scheme (so the sender's host must service the ACK), then
/// computes for `X` µs before waiting. With polling progress the protocol
/// stalls until the host re-enters the library; with one-thread progress
/// the progress thread services the ACK during the computation.
pub fn overlap() -> Table {
    use openmpi_core::{Placement, Universe};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    fn total_us(progress: ProgressMode, compute_us: usize) -> f64 {
        let mut cfg = StackConfig::best();
        cfg.scheme = RdmaScheme::Write;
        cfg.progress = progress;
        if progress == ProgressMode::OneThread {
            cfg.completion = CompletionMode::SharedQueueCombined;
        }
        let uni = Universe::paper_testbed(cfg);
        let t = Arc::new(AtomicU64::new(0));
        let t2 = t.clone();
        uni.run_world(2, Placement::RoundRobin, move |mpi| {
            let w = mpi.world();
            let len = 256 << 10;
            let buf = mpi.alloc(len);
            mpi.barrier(&w);
            if mpi.rank() == 0 {
                let t0 = mpi.now();
                let req = mpi.isend(&w, 1, 0, &buf, len);
                mpi.compute(qsim::Dur::from_us(compute_us as u64));
                mpi.wait(req);
                t2.store((mpi.now() - t0).as_ns(), Ordering::SeqCst);
            } else {
                mpi.recv(&w, 0, 0, &buf, len);
            }
        });
        t.load(Ordering::SeqCst) as f64 / 1_000.0
    }

    let mut t = Table::new(
        "Ablation: comm/compute overlap, 256KB RDMA-write isend + X us compute",
        "us total",
        &["Polling", "One Thread"],
    );
    for compute in [0usize, 100, 300, 600, 1000] {
        t.push(
            compute,
            vec![
                total_us(ProgressMode::Polling, compute),
                total_us(ProgressMode::OneThread, compute),
            ],
        );
    }
    t
}

/// Scaling on larger machines: collective latency as the fat tree grows
/// from one level (8 nodes) to three (64 nodes).
pub fn scale() -> Table {
    use openmpi_core::{Placement, Universe};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    fn coll_us(ranks: usize, which: u8) -> f64 {
        let fabric = FabricConfig {
            nodes: ranks.max(8),
            ..Default::default()
        };
        let uni = Universe::new(
            NicConfig::default(),
            fabric,
            StackConfig::best(),
            Transports::default(),
        );
        let t = Arc::new(AtomicU64::new(0));
        let t2 = t.clone();
        uni.run_world(ranks, Placement::RoundRobin, move |mpi| {
            let w = mpi.world();
            let buf = mpi.alloc(1024);
            mpi.barrier(&w);
            let t0 = mpi.now();
            let iters = 10;
            for _ in 0..iters {
                match which {
                    0 => mpi.barrier(&w),
                    1 => mpi.bcast(&w, 0, &buf, 1024),
                    _ => mpi.allreduce(&w, openmpi_core::ReduceOp::SumF64, &buf, 64),
                }
            }
            mpi.barrier(&w);
            if mpi.rank() == 0 {
                t2.store((mpi.now() - t0).as_ns() / iters, Ordering::SeqCst);
            }
        });
        t.load(Ordering::SeqCst) as f64 / 1_000.0
    }

    let mut t = Table::new(
        "Ablation: collective latency vs machine size (ranks)",
        "us",
        &["barrier", "bcast 1KB (hw)", "allreduce 64B"],
    );
    for ranks in [4usize, 8, 16, 32, 64] {
        t.push(
            ranks,
            vec![coll_us(ranks, 0), coll_us(ranks, 1), coll_us(ranks, 2)],
        );
    }
    t
}

/// Collective-I/O bandwidth vs the number of I/O nodes: 8 ranks write a
/// shared checkpoint file; striping across more I/O nodes scales until the
/// ranks' request rate saturates.
pub fn io_scaling() -> Table {
    use openmpi_core::{Placement, Universe};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    fn bw(io_nodes: usize, block: usize) -> f64 {
        let uni = Universe::paper_testbed(StackConfig::best());
        let pfs = ompi_io::Pfs::new(ompi_io::PfsConfig {
            io_nodes,
            ..Default::default()
        });
        let t = Arc::new(AtomicU64::new(0));
        let t2 = t.clone();
        uni.run_world(8, Placement::RoundRobin, move |mpi| {
            let w = mpi.world();
            let f = ompi_io::File::open(&mpi, &pfs, &w, "ckpt");
            let buf = mpi.alloc(block);
            mpi.barrier(&w);
            let t0 = mpi.now();
            f.write_all(&mpi, 0, &buf, block);
            if mpi.rank() == 0 {
                t2.store((mpi.now() - t0).as_ns(), Ordering::SeqCst);
            }
        });
        let ns = t.load(Ordering::SeqCst) as f64;
        (8 * block) as f64 / (ns / 1e9) / 1e6
    }

    let mut t = Table::new(
        "Ablation: collective checkpoint bandwidth vs I/O nodes (8 ranks)",
        "MB/s",
        &["256KB/rank", "1MB/rank"],
    );
    for nodes in [1usize, 2, 4, 8, 16] {
        t.push(nodes, vec![bw(nodes, 256 << 10), bw(nodes, 1 << 20)]);
    }
    t
}

/// Sensitivity of Table 1 to the interrupt cost (how much of the
/// asynchronous-progress penalty is the kernel's fault).
pub fn sweep_irq_cost() -> Table {
    let mut t = Table::new(
        "Ablation: interrupt-latency sweep (4B RDMA-read, interrupt mode)",
        "us",
        &["Basic", "Interrupt"],
    );
    for irq_us in [1usize, 3, 5, 10, 20] {
        let nic = NicConfig {
            irq_latency: qsim::Dur::from_us(irq_us as u64),
            ..Default::default()
        };
        let basic = Setup {
            nic: nic.clone(),
            fabric: FabricConfig::default(),
            stack: rndv_cfg(RdmaScheme::Read, false, false),
            transports: Transports::default(),
        };
        let mut istack = rndv_cfg(RdmaScheme::Read, false, false);
        istack.progress = ProgressMode::Interrupt;
        let interrupt = Setup {
            nic,
            fabric: FabricConfig::default(),
            stack: istack,
            transports: Transports::default(),
        };
        t.push(
            irq_us,
            vec![ompi_latency(&basic, 4), ompi_latency(&interrupt, 4)],
        );
    }
    t
}
