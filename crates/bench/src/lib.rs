//! # ompi-bench — experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation (§6) from
//! the simulated stack, plus the ablations DESIGN.md calls out. Each
//! experiment is a pure function returning a [`report::Table`]; the
//! `harness` binary prints them and `EXPERIMENTS.md` records them against
//! the paper's numbers.

pub mod compare;
pub mod experiments;
pub mod measure;
pub mod report;

pub use experiments::*;
pub use report::Table;
