//! Criterion benches: one group per paper table/figure.
//!
//! Each iteration runs the corresponding simulated experiment end to end,
//! so Criterion measures the *simulator's* wall-clock cost; the virtual
//! time results (the paper reproduction itself) are printed once per group
//! so `cargo bench` output doubles as a compact results report. Use the
//! `harness` binary for the full tables.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

use elan4::NicConfig;
use ompi_bench::measure::{
    mpich_latency, ompi_bandwidth, ompi_latency, qdma_native_latency, Setup,
};
use openmpi_core::{CompletionMode, ProgressMode, RdmaScheme, StackConfig};
use qsnet::FabricConfig;

fn quick<'a>(
    c: &'a mut Criterion,
    name: &str,
) -> criterion::BenchmarkGroup<'a, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group(name);
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(2));
    g.warm_up_time(Duration::from_millis(300));
    g
}

fn rndv(scheme: RdmaScheme, inline: bool, dtp: bool) -> StackConfig {
    let mut cfg = StackConfig::best();
    cfg.scheme = scheme;
    cfg.inline_first_frag = inline;
    cfg.use_datatype_engine = dtp;
    cfg.force_rendezvous = true;
    cfg
}

/// Fig. 7: basic RDMA read/write latency (inline / no-inline / DTP).
fn bench_fig7(c: &mut Criterion) {
    println!(
        "fig7 @4KB (us): read={:.2} read-noinline={:.2} read-dtp={:.2} write={:.2}",
        ompi_latency(&Setup::paper(rndv(RdmaScheme::Read, true, false)), 4096),
        ompi_latency(&Setup::paper(rndv(RdmaScheme::Read, false, false)), 4096),
        ompi_latency(&Setup::paper(rndv(RdmaScheme::Read, true, true)), 4096),
        ompi_latency(&Setup::paper(rndv(RdmaScheme::Write, true, false)), 4096),
    );
    let mut g = quick(c, "fig7_rdma_basic");
    g.bench_function("read_4k", |b| {
        let s = Setup::paper(rndv(RdmaScheme::Read, true, false));
        b.iter(|| ompi_latency(&s, 4096))
    });
    g.bench_function("write_4k", |b| {
        let s = Setup::paper(rndv(RdmaScheme::Write, true, false));
        b.iter(|| ompi_latency(&s, 4096))
    });
    g.finish();
}

/// Fig. 8: chained DMA / shared completion queue.
fn bench_fig8(c: &mut Criterion) {
    let base = rndv(RdmaScheme::Read, false, false);
    let mut nochain = base.clone();
    nochain.chained_fin = false;
    let mut oneq = base.clone();
    oneq.completion = CompletionMode::SharedQueueCombined;
    println!(
        "fig8 @4KB (us): chained={:.2} nochain={:.2} one-queue={:.2}",
        ompi_latency(&Setup::paper(base.clone()), 4096),
        ompi_latency(&Setup::paper(nochain), 4096),
        ompi_latency(&Setup::paper(oneq.clone()), 4096),
    );
    let mut g = quick(c, "fig8_completion");
    g.bench_function("chained", |b| {
        let s = Setup::paper(base.clone());
        b.iter(|| ompi_latency(&s, 4096))
    });
    g.bench_function("one_queue", |b| {
        let s = Setup::paper(oneq.clone());
        b.iter(|| ompi_latency(&s, 4096))
    });
    g.finish();
}

/// Fig. 9: layer decomposition (native QDMA vs full stack).
fn bench_fig9(c: &mut Criterion) {
    let nic = NicConfig::default();
    let fabric = FabricConfig::default();
    println!(
        "fig9 @64B (us): qdma={:.2} total={:.2}",
        qdma_native_latency(&nic, &fabric, 128),
        ompi_latency(&Setup::paper(StackConfig::best()), 64),
    );
    let mut g = quick(c, "fig9_layers");
    g.bench_function("native_qdma", |b| {
        b.iter(|| qdma_native_latency(&nic, &fabric, 128))
    });
    g.bench_function("full_stack", |b| {
        let s = Setup::paper(StackConfig::best());
        b.iter(|| ompi_latency(&s, 64))
    });
    g.finish();
}

/// Table 1: asynchronous-progress modes.
fn bench_table1(c: &mut Criterion) {
    let basic = rndv(RdmaScheme::Read, false, false);
    let mut one = basic.clone();
    one.progress = ProgressMode::OneThread;
    one.completion = CompletionMode::SharedQueueCombined;
    println!(
        "table1 @4B (us): basic={:.2} one-thread={:.2}",
        ompi_latency(&Setup::paper(basic.clone()), 4),
        ompi_latency(&Setup::paper(one.clone()), 4),
    );
    let mut g = quick(c, "table1_progress");
    g.bench_function("basic", |b| {
        let s = Setup::paper(basic.clone());
        b.iter(|| ompi_latency(&s, 4))
    });
    g.bench_function("one_thread", |b| {
        let s = Setup::paper(one.clone());
        b.iter(|| ompi_latency(&s, 4))
    });
    g.finish();
}

/// Fig. 10(a/b): latency vs MPICH-QsNetII.
fn bench_fig10_latency(c: &mut Criterion) {
    let nic = NicConfig::default();
    let fabric = FabricConfig::default();
    println!(
        "fig10a @0B (us): mpich={:.2} openmpi={:.2}",
        mpich_latency(&nic, &fabric, 0),
        ompi_latency(&Setup::paper(StackConfig::best()), 0),
    );
    let mut g = quick(c, "fig10_latency");
    g.bench_function("mpich_0b", |b| b.iter(|| mpich_latency(&nic, &fabric, 0)));
    g.bench_function("openmpi_0b", |b| {
        let s = Setup::paper(StackConfig::best());
        b.iter(|| ompi_latency(&s, 0))
    });
    g.finish();
}

/// Fig. 10(c/d): bandwidth vs MPICH-QsNetII.
fn bench_fig10_bandwidth(c: &mut Criterion) {
    let s = Setup::paper(StackConfig::best());
    println!(
        "fig10d @256KB (MB/s): openmpi={:.0}",
        ompi_bandwidth(&s, 256 << 10, 8, 2),
    );
    let mut g = quick(c, "fig10_bandwidth");
    g.bench_function("openmpi_256k", |b| {
        b.iter(|| ompi_bandwidth(&s, 256 << 10, 8, 2))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_fig7,
    bench_fig8,
    bench_fig9,
    bench_table1,
    bench_fig10_latency,
    bench_fig10_bandwidth
);
criterion_main!(benches);
