//! Microbenchmarks of the hot data structures (real wall time, not
//! simulation): header codec, fat-tree routing, the arena allocator, the
//! datatype convertor, and a full small simulation step.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::time::Duration;

use ompi_datatype::{Convertor, Datatype};
use openmpi_core::hdr::{Hdr, HdrType};
use qsnet::FatTree;

fn quick<'a>(
    c: &'a mut Criterion,
    name: &str,
) -> criterion::BenchmarkGroup<'a, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group(name);
    g.sample_size(30);
    g.measurement_time(Duration::from_secs(2));
    g.warm_up_time(Duration::from_millis(300));
    g
}

fn bench_hdr_codec(c: &mut Criterion) {
    let mut g = quick(c, "hdr_codec");
    let mut h = Hdr::new(HdrType::Rendezvous);
    h.ctx = 7;
    h.src_rank = 3;
    h.tag = 99;
    h.msg_len = 1 << 20;
    h.payload_len = 1984;
    g.bench_function("serialize", |b| b.iter(|| black_box(h.to_bytes())));
    let bytes = h.to_bytes();
    g.bench_function("parse", |b| b.iter(|| black_box(Hdr::from_bytes(&bytes))));
    g.finish();
}

fn bench_topology(c: &mut Criterion) {
    let mut g = quick(c, "fat_tree");
    let t = FatTree::new(4, 1024);
    g.bench_function("switch_hops_1k_nodes", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for a in (0..1024).step_by(37) {
                for z in (0..1024).step_by(41) {
                    acc = acc.wrapping_add(t.switch_hops(a, z));
                }
            }
            black_box(acc)
        })
    });
    g.finish();
}

fn bench_convertor(c: &mut Criterion) {
    let mut g = quick(c, "datatype_convertor");
    let dt = Datatype::vector(256, 16, 48, Datatype::u8());
    let conv = Convertor::new(dt, 4);
    let src = vec![7u8; conv.span()];
    g.bench_function("pack_16k_strided", |b| {
        b.iter(|| black_box(conv.pack(&src)))
    });
    let packed = conv.pack(&src);
    let mut dst = vec![0u8; conv.span()];
    g.bench_function("unpack_16k_strided", |b| {
        b.iter(|| conv.unpack(black_box(&packed), &mut dst))
    });
    g.finish();
}

fn bench_sim_kernel(c: &mut Criterion) {
    let mut g = quick(c, "sim_kernel");
    g.bench_function("spawn_run_1k_events", |b| {
        b.iter(|| {
            let sim = qsim::Simulation::new();
            let h = sim.handle();
            for i in 0..1000u64 {
                h.call_after(qsim::Dur::from_ns(i), |_| {});
            }
            sim.run().unwrap()
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_hdr_codec,
    bench_topology,
    bench_convertor,
    bench_sim_kernel
);
criterion_main!(benches);
