//! # elan4 — simulated Quadrics Elan4 NIC
//!
//! A from-scratch model of the pieces of `libelan4` the paper's transport
//! uses, driven by the deterministic `qsim` kernel and the `qsnet` fabric:
//!
//! - **Capability & contexts** — processes claim a context (and thus a
//!   [`Vpid`]) on a node at any time: the dynamic-join primitive the paper
//!   needs for MPI-2 dynamic process management.
//! - **Memory & MMU** — host buffers live in per-node arenas; the NIC can
//!   only touch memory that has been mapped to an [`E4Addr`] through the
//!   context's [`mmu::Mmu`] (paper §4.2's address-format constraint).
//! - **QDMA** — queued DMA of ≤ 2 KB messages into a peer's receive queue
//!   ([`RxQueue`]) with host-event notification and optional interrupts.
//! - **RDMA** — read and write DMA between mapped buffers, chunk-pipelined
//!   across host bus / wire / host bus.
//! - **Events** — counted completion events; an event may carry a *chained*
//!   QDMA launched by the NIC when it fires (the chained-event mechanism
//!   behind the paper's FIN/FIN_ACK optimization and shared completion
//!   queue).
//! - **Tport** — the NIC-side tag-matching engine used by the
//!   MPICH-QsNetII comparator.
//!
//! Timing constants live in [`NicConfig`]; see DESIGN.md §5.

#![warn(missing_docs)]

mod alloc;
mod cluster;
mod config;
mod ctx;
pub mod mmu;
mod tport;
mod types;

pub use cluster::{Cluster, ClusterStats, NicReduce, QdmaSpec, QdmaTarget};
pub use config::NicConfig;
pub use ctx::{ElanCtx, ElanEvent, RxQueue};
pub use tport::{Tport, TportEnvelope, TportRecv, TportSend, TPORT_ANY_SRC, TPORT_ANY_TAG};
pub use types::{DmaKind, E4Addr, EventId, HostAddr, HostBuf, QueueId, Vpid};

#[cfg(test)]
mod tests;
