//! Cross-module tests of the NIC model: QDMA delivery, RDMA data movement,
//! chained events, interrupts, dynamic attach/detach, and Tport matching.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use qsim::Mutex;
use qsim::{Dur, Simulation};
use qsnet::FabricConfig;

use crate::{Cluster, DmaKind, ElanCtx, NicConfig, QdmaSpec, Tport, TPORT_ANY_TAG};

fn cluster() -> Arc<Cluster> {
    Cluster::new(NicConfig::default(), FabricConfig::default())
}

#[test]
fn capability_allocates_and_releases_contexts() {
    let cl = cluster();
    let a = ElanCtx::attach(&cl, 0).unwrap();
    let b = ElanCtx::attach(&cl, 0).unwrap();
    assert_ne!(a.vpid(), b.vpid());
    assert!(cl.ctx_alive(a.vpid()));
    let va = a.vpid();
    a.detach();
    assert!(!cl.ctx_alive(va));
    // Context is reusable after release.
    let c = ElanCtx::attach(&cl, 0).unwrap();
    assert_eq!(c.vpid(), va);
    b.detach();
    c.detach();
}

#[test]
fn capability_exhaustion() {
    let cfg = NicConfig {
        ctxs_per_node: 2,
        ..Default::default()
    };
    let cl = Cluster::new(cfg, FabricConfig::default());
    let a = ElanCtx::attach(&cl, 3).unwrap();
    let _b = ElanCtx::attach(&cl, 3).unwrap();
    assert!(ElanCtx::attach(&cl, 3).is_none());
    // Other nodes unaffected.
    assert!(ElanCtx::attach(&cl, 2).is_some());
    a.detach();
    assert!(ElanCtx::attach(&cl, 3).is_some());
}

#[test]
fn qdma_delivers_payload_and_costs_time() {
    let cl = cluster();
    let sim = Simulation::new();
    let rx_ctx = Arc::new(ElanCtx::attach(&cl, 4).unwrap());
    let tx_ctx = Arc::new(ElanCtx::attach(&cl, 0).unwrap());
    let rx_vpid = rx_ctx.vpid();
    let got = Arc::new(Mutex::new(Vec::new()));
    let t_arrive = Arc::new(AtomicU64::new(0));

    {
        let rx_ctx = rx_ctx.clone();
        let got = got.clone();
        let t = t_arrive.clone();
        sim.spawn("rx", move |p| {
            let q = rx_ctx.create_queue(8, 2048);
            let sig = p.signal();
            q.set_signal(sig.clone());
            let msg = q.wait_pop(&p, &sig, Dur::from_ns(100)).unwrap();
            t.store(p.now().as_ns(), Ordering::SeqCst);
            *got.lock() = msg;
        });
    }
    {
        let tx_ctx = tx_ctx.clone();
        sim.spawn("tx", move |p| {
            // Give the receiver a tick to create its queue.
            p.advance(Dur::from_ns(10));
            tx_ctx.qdma(&p, 0, rx_vpid, crate::QueueId(0), vec![7u8; 512], None);
        });
    }
    sim.run().unwrap();
    assert_eq!(&*got.lock(), &vec![7u8; 512]);
    let ns = t_arrive.load(Ordering::SeqCst);
    // pio + cmd + bus + wire(3 hops) + deposit + detect: roughly 1.2-2.5us.
    assert!(ns > 1_000 && ns < 4_000, "qdma latency {ns}ns out of band");
    assert_eq!(cl.stats().qdmas, 1);
}

#[test]
fn qdma_local_event_fires_when_buffer_drained() {
    let cl = cluster();
    let sim = Simulation::new();
    let rx = Arc::new(ElanCtx::attach(&cl, 1).unwrap());
    let tx = Arc::new(ElanCtx::attach(&cl, 0).unwrap());
    let rx_vpid = rx.vpid();
    let _q = rx.create_queue(4, 2048);
    let fired_at = Arc::new(AtomicU64::new(0));
    let f2 = fired_at.clone();
    sim.spawn("tx", move |p| {
        let ev = tx.event_create(1);
        let sig = p.signal();
        ev.set_signal(sig.clone());
        tx.qdma(
            &p,
            0,
            rx_vpid,
            crate::QueueId(0),
            vec![1u8; 1024],
            Some(ev.id()),
        );
        p.wait(&sig).expect_signaled();
        assert!(ev.take_fired_ready());
        f2.store(p.now().as_ns(), Ordering::SeqCst);
    });
    sim.run().unwrap();
    let ns = fired_at.load(Ordering::SeqCst);
    assert!(ns > 0, "event never fired");
    // Local completion happens before full remote delivery would.
    assert!(ns < 3_000, "local completion too slow: {ns}");
}

#[test]
fn rdma_write_moves_bytes() {
    let cl = cluster();
    let sim = Simulation::new();
    let a = Arc::new(ElanCtx::attach(&cl, 0).unwrap());
    let b = Arc::new(ElanCtx::attach(&cl, 5).unwrap());

    let src = a.alloc(8192);
    let dst = b.alloc(8192);
    let pattern: Vec<u8> = (0..8192u32).map(|i| (i % 251) as u8).collect();
    a.write(&src, 0, &pattern);

    let done_t = Arc::new(AtomicU64::new(0));
    {
        let a = a.clone();
        let b = b.clone();
        let dt = done_t.clone();
        sim.spawn("writer", move |p| {
            let local = a.map(&p, &src);
            let remote = b.map(&p, &dst);
            let ev = a.event_create(1);
            let sig = p.signal();
            ev.set_signal(sig.clone());
            a.rdma(&p, 0, DmaKind::Write, local, remote, 8192, Some(ev.id()));
            p.wait(&sig).expect_signaled();
            assert!(ev.take_fired_ready());
            dt.store(p.now().as_ns(), Ordering::SeqCst);
        });
    }
    sim.run().unwrap();
    assert_eq!(b.read(&dst, 0, 8192), pattern);
    let ns = done_t.load(Ordering::SeqCst);
    // 8KB at ~min(bus,link) plus latencies: several microseconds.
    assert!(ns > 7_000 && ns < 20_000, "rdma write time {ns}");
}

#[test]
fn rdma_read_pulls_bytes() {
    let cl = cluster();
    let sim = Simulation::new();
    let a = Arc::new(ElanCtx::attach(&cl, 2).unwrap());
    let b = Arc::new(ElanCtx::attach(&cl, 6).unwrap());

    let theirs = b.alloc(4096);
    let mine = a.alloc(4096);
    b.write(&theirs, 0, &vec![0xAB; 4096]);

    sim.spawn("reader", move |p| {
        let remote = b.map(&p, &theirs);
        let local = a.map(&p, &mine);
        let ev = a.event_create(1);
        let sig = p.signal();
        ev.set_signal(sig.clone());
        a.rdma(&p, 0, DmaKind::Read, local, remote, 4096, Some(ev.id()));
        p.wait(&sig).expect_signaled();
        assert_eq!(a.read(&mine, 0, 4096), vec![0xAB; 4096]);
    });
    sim.run().unwrap();
    assert_eq!(cl.stats().rdmas, 1);
    assert_eq!(cl.stats().rdma_bytes, 4096);
}

#[test]
fn rdma_read_slower_than_write_by_request_trip() {
    // A read pays an extra request packet before data can flow.
    fn timed(kind: DmaKind) -> u64 {
        let cl = cluster();
        let sim = Simulation::new();
        let a = Arc::new(ElanCtx::attach(&cl, 0).unwrap());
        let b = Arc::new(ElanCtx::attach(&cl, 4).unwrap());
        let mine = a.alloc(256);
        let theirs = b.alloc(256);
        let t = Arc::new(AtomicU64::new(0));
        let t2 = t.clone();
        sim.spawn("p", move |p| {
            let local = a.map(&p, &mine);
            let remote = b.map(&p, &theirs);
            let ev = a.event_create(1);
            let sig = p.signal();
            ev.set_signal(sig.clone());
            a.rdma(&p, 0, kind, local, remote, 256, Some(ev.id()));
            p.wait(&sig).expect_signaled();
            t2.store(p.now().as_ns(), Ordering::SeqCst);
        });
        sim.run().unwrap();
        t.load(Ordering::SeqCst)
    }
    let w = timed(DmaKind::Write);
    let r = timed(DmaKind::Read);
    assert!(r > w, "read {r} should exceed write {w}");
    assert!(r - w < 1_500, "request overhead too large: {}", r - w);
}

#[test]
fn counted_event_fires_after_n_completions() {
    let cl = cluster();
    let sim = Simulation::new();
    let a = Arc::new(ElanCtx::attach(&cl, 0).unwrap());
    let b = Arc::new(ElanCtx::attach(&cl, 1).unwrap());
    let mine = a.alloc(4 * 1024);
    let theirs = b.alloc(4 * 1024);

    sim.spawn("p", move |p| {
        let local = a.map(&p, &mine);
        let remote = b.map(&p, &theirs);
        let ev = a.event_create(3);
        let sig = p.signal();
        ev.set_signal(sig.clone());
        for i in 0..3 {
            a.rdma(
                &p,
                0,
                DmaKind::Write,
                local.offset(i * 1024),
                remote.offset(i * 1024),
                1024,
                Some(ev.id()),
            );
        }
        p.wait(&sig).expect_signaled();
        assert!(ev.take_fired_ready());
        assert!(!ev.take_fired_ready(), "must fire exactly once");
    });
    sim.run().unwrap();
}

#[test]
fn chained_qdma_launches_on_event_fire() {
    // RDMA write with a FIN-style chained QDMA: the receiver learns of
    // completion without the sender's host touching the NIC again.
    let cl = cluster();
    let sim = Simulation::new();
    let a = Arc::new(ElanCtx::attach(&cl, 0).unwrap());
    let b = Arc::new(ElanCtx::attach(&cl, 7).unwrap());
    let b_vpid = b.vpid();

    let src = a.alloc(2048);
    let dst = b.alloc(2048);
    a.write(&src, 0, &[0x5A; 2048]);

    {
        let b = b.clone();
        sim.spawn("rx", move |p| {
            let q = b.create_queue(4, 2048);
            let sig = p.signal();
            q.set_signal(sig.clone());
            let fin = q.wait_pop(&p, &sig, Dur::from_ns(100)).unwrap();
            assert_eq!(fin, vec![0xF1u8, 0x4E]);
        });
    }
    {
        let a = a.clone();
        let b = b.clone();
        sim.spawn("tx", move |p| {
            p.advance(Dur::from_ns(10));
            let local = a.map(&p, &src);
            let remote = b.map(&p, &dst);
            let ev = a.event_create(1);
            ev.chain_qdma(QdmaSpec::to_queue(
                b_vpid,
                crate::QueueId(0),
                vec![0xF1, 0x4E],
                0,
            ));
            a.rdma(&p, 0, DmaKind::Write, local, remote, 2048, Some(ev.id()));
        });
    }
    sim.run().unwrap();
    assert_eq!(cl.stats().chained_launches, 1);
    assert_eq!(b.read(&dst, 0, 4), vec![0x5A; 4]);
}

#[test]
fn interrupt_mode_adds_latency() {
    fn qdma_latency(irq: bool) -> u64 {
        let cl = cluster();
        let sim = Simulation::new();
        let rx = Arc::new(ElanCtx::attach(&cl, 1).unwrap());
        let tx = Arc::new(ElanCtx::attach(&cl, 0).unwrap());
        let rx_vpid = rx.vpid();
        let t = Arc::new(AtomicU64::new(0));
        {
            let t = t.clone();
            sim.spawn("rx", move |p| {
                let q = rx.create_queue(4, 2048);
                q.arm_irq(irq);
                let sig = p.signal();
                q.set_signal(sig.clone());
                q.wait_pop(&p, &sig, Dur::from_ns(100)).unwrap();
                t.store(p.now().as_ns(), Ordering::SeqCst);
            });
        }
        sim.spawn("tx", move |p| {
            p.advance(Dur::from_ns(10));
            tx.qdma(&p, 0, rx_vpid, crate::QueueId(0), vec![1, 2, 3], None);
        });
        sim.run().unwrap();
        t.load(Ordering::SeqCst)
    }
    let poll = qdma_latency(false);
    let irq = qdma_latency(true);
    let delta = irq - poll;
    let expect = NicConfig::default().irq_latency.as_ns();
    assert_eq!(delta, expect, "interrupt should add exactly irq_latency");
}

#[test]
fn queue_overflow_retries_and_delivers_eventually() {
    let cl = cluster();
    let sim = Simulation::new();
    let rx = Arc::new(ElanCtx::attach(&cl, 1).unwrap());
    let tx = Arc::new(ElanCtx::attach(&cl, 0).unwrap());
    let rx_vpid = rx.vpid();
    let received = Arc::new(AtomicU64::new(0));
    {
        let rx = rx.clone();
        let received = received.clone();
        sim.spawn("rx", move |p| {
            let q = rx.create_queue(2, 64); // tiny queue
            let sig = p.signal();
            q.set_signal(sig.clone());
            // Drain slowly so senders overflow.
            for _ in 0..8 {
                let _ = q.wait_pop(&p, &sig, Dur::from_ns(100)).unwrap();
                received.fetch_add(1, Ordering::SeqCst);
                p.advance(Dur::from_us(5));
            }
        });
    }
    sim.spawn("tx", move |p| {
        p.advance(Dur::from_ns(10));
        for i in 0..8 {
            tx.qdma(&p, 0, rx_vpid, crate::QueueId(0), vec![i as u8; 32], None);
        }
    });
    sim.run().unwrap();
    assert_eq!(received.load(Ordering::SeqCst), 8);
    assert!(
        cl.stats().queue_overflows > 0,
        "test should exercise overflow"
    );
}

#[test]
fn qdma_to_detached_context_is_dropped() {
    let cl = cluster();
    let sim = Simulation::new();
    let rx = ElanCtx::attach(&cl, 1).unwrap();
    let rx_vpid = rx.vpid();
    let _q = rx.create_queue(4, 2048);
    rx.detach();
    let tx = Arc::new(ElanCtx::attach(&cl, 0).unwrap());
    sim.spawn("tx", move |p| {
        tx.qdma(&p, 0, rx_vpid, crate::QueueId(0), vec![1], None);
        p.advance(Dur::from_us(50));
    });
    // Must not panic or deadlock.
    sim.run().unwrap();
}

#[test]
fn tport_eager_pingpong_and_latency_band() {
    let cl = cluster();
    let sim = Simulation::new();
    let a = Arc::new(ElanCtx::attach(&cl, 0).unwrap());
    let b = Arc::new(ElanCtx::attach(&cl, 4).unwrap());
    let (va, vb) = (a.vpid(), b.vpid());
    let rtt = Arc::new(AtomicU64::new(0));
    {
        let rtt = rtt.clone();
        let a = a.clone();
        sim.spawn("a", move |p| {
            let tp = Tport::new(a.clone(), 0);
            let sbuf = a.alloc(64);
            let rbuf = a.alloc(64);
            a.write(&sbuf, 0, &[9u8; 64]);
            let t0 = p.now();
            let r = tp.irecv(&p, vb.raw(), 1, rbuf);
            let s = tp.isend(&p, vb, 0, sbuf, 64);
            tp.wait_send(&p, &s);
            tp.wait_recv(&p, &r);
            rtt.store((p.now() - t0).as_ns(), Ordering::SeqCst);
            assert_eq!(a.read(&rbuf, 0, 64), [3u8; 64]);
        });
    }
    {
        let b = b.clone();
        sim.spawn("b", move |p| {
            let tp = Tport::new(b.clone(), 0);
            let rbuf = b.alloc(64);
            let sbuf = b.alloc(64);
            b.write(&sbuf, 0, &[3u8; 64]);
            let r = tp.irecv(&p, va.raw(), 0, rbuf);
            tp.wait_recv(&p, &r);
            assert_eq!(b.read(&rbuf, 0, 64), [9u8; 64]);
            let s = tp.isend(&p, va, 1, sbuf, 64);
            tp.wait_send(&p, &s);
        });
    }
    sim.run().unwrap();
    let half = rtt.load(Ordering::SeqCst) / 2;
    // MPICH-QsNetII small-message latency is ~3us in the paper.
    assert!(half > 1_500 && half < 5_000, "tport latency {half}ns");
}

#[test]
fn tport_large_message_rendezvous() {
    let cl = cluster();
    let sim = Simulation::new();
    let a = Arc::new(ElanCtx::attach(&cl, 0).unwrap());
    let b = Arc::new(ElanCtx::attach(&cl, 1).unwrap());
    let vb = b.vpid();
    let len = 256 * 1024;
    let pattern: Vec<u8> = (0..len).map(|i| (i * 37 % 256) as u8).collect();
    {
        let a = a.clone();
        let pattern = pattern.clone();
        sim.spawn("a", move |p| {
            let tp = Tport::new(a.clone(), 0);
            let sbuf = a.alloc(len);
            a.write(&sbuf, 0, &pattern);
            let s = tp.isend(&p, vb, 42, sbuf, len);
            tp.wait_send(&p, &s);
        });
    }
    {
        let b = b.clone();
        sim.spawn("b", move |p| {
            // Post late so the message goes unexpected first.
            p.advance(Dur::from_us(20));
            let tp = Tport::new(b.clone(), 0);
            let rbuf = b.alloc(len);
            let r = tp.irecv(&p, crate::TPORT_ANY_SRC, TPORT_ANY_TAG, rbuf);
            let env = tp.wait_recv(&p, &r);
            assert_eq!(env.len, len);
            assert_eq!(b.read(&rbuf, 0, len), pattern);
        });
    }
    sim.run().unwrap();
}

#[test]
fn tport_matching_order_fifo_per_tag() {
    let cl = cluster();
    let sim = Simulation::new();
    let a = Arc::new(ElanCtx::attach(&cl, 0).unwrap());
    let b = Arc::new(ElanCtx::attach(&cl, 1).unwrap());
    let vb = b.vpid();
    {
        let a = a.clone();
        sim.spawn("a", move |p| {
            let tp = Tport::new(a.clone(), 0);
            for i in 0..4u8 {
                let sbuf = a.alloc(16);
                a.write(&sbuf, 0, &[i; 16]);
                let s = tp.isend(&p, vb, 7, sbuf, 16);
                tp.wait_send(&p, &s);
            }
        });
    }
    {
        let b = b.clone();
        sim.spawn("b", move |p| {
            p.advance(Dur::from_us(30));
            let tp = Tport::new(b.clone(), 0);
            for i in 0..4u8 {
                let rbuf = b.alloc(16);
                let r = tp.irecv(&p, crate::TPORT_ANY_SRC, 7, rbuf);
                tp.wait_recv(&p, &r);
                assert_eq!(b.read(&rbuf, 0, 16), [i; 16], "message {i} out of order");
            }
        });
    }
    sim.run().unwrap();
}

#[test]
fn hw_bcast_delivers_to_all_targets() {
    let cl = cluster();
    let sim = Simulation::new();
    let root = Arc::new(ElanCtx::attach(&cl, 0).unwrap());
    let mut receivers = Vec::new();
    for node in 1..=3 {
        receivers.push(Arc::new(ElanCtx::attach(&cl, node).unwrap()));
    }
    let targets: Vec<_> = receivers.iter().map(|r| r.vpid()).collect();
    let got = Arc::new(AtomicU64::new(0));
    let times = Arc::new(Mutex::new(Vec::new()));
    for (i, rx) in receivers.iter().enumerate() {
        let rx = rx.clone();
        let got = got.clone();
        let times = times.clone();
        sim.spawn(&format!("rx{i}"), move |p| {
            let q = rx.create_queue(8, 2048);
            let sig = p.signal();
            q.set_signal(sig.clone());
            let msg = q.wait_pop(&p, &sig, Dur::from_ns(100)).unwrap();
            assert_eq!(msg, vec![i as u8 + 1; 100]);
            got.fetch_add(1, Ordering::SeqCst);
            times.lock().push(p.now().as_ns());
        });
    }
    {
        let root = root.clone();
        sim.spawn("root", move |p| {
            p.advance(Dur::from_ns(50));
            // Per-target payloads may differ (header sequencing) but the
            // wire carries the frame once.
            let tgts = targets
                .iter()
                .enumerate()
                .map(|(i, v)| (*v, crate::QueueId(0), vec![i as u8 + 1; 100]))
                .collect();
            root.hw_bcast(&p, 0, tgts, None);
        });
    }
    sim.run().unwrap();
    assert_eq!(got.load(Ordering::SeqCst), 3);
    assert_eq!(cl.stats().hw_bcasts, 1);
    // Deliveries are near-simultaneous (switch replication), not serialized
    // message-by-message.
    let times = times.lock();
    let spread = times.iter().max().unwrap() - times.iter().min().unwrap();
    assert!(spread < 1_000, "bcast skew {spread}ns too large");
}

#[test]
fn hw_bcast_cheaper_than_sequential_sends() {
    // Compare source-side injection occupancy: one bcast vs 6 unicasts.
    fn run(bcast: bool) -> u64 {
        let cl = cluster();
        let sim = Simulation::new();
        let root = Arc::new(ElanCtx::attach(&cl, 0).unwrap());
        let mut vpids = Vec::new();
        let mut receivers = Vec::new();
        for node in 1..=6 {
            let c = Arc::new(ElanCtx::attach(&cl, node).unwrap());
            let _q = c.create_queue(8, 2048);
            vpids.push(c.vpid());
            receivers.push(c);
        }
        let done = Arc::new(AtomicU64::new(0));
        let d2 = done.clone();
        sim.spawn("root", move |p| {
            let payload = vec![7u8; 1984];
            if bcast {
                let tgts = vpids
                    .iter()
                    .map(|v| (*v, crate::QueueId(0), payload.clone()))
                    .collect();
                root.hw_bcast(&p, 0, tgts, None);
            } else {
                for v in &vpids {
                    root.qdma(&p, 0, *v, crate::QueueId(0), payload.clone(), None);
                }
            }
            // Let deliveries complete.
            p.advance(Dur::from_us(100));
            d2.store(p.now().as_ns(), Ordering::SeqCst);
            drop(receivers);
        });
        sim.run().unwrap();
        let stats = cl.fabric().stats();
        stats.wire_bytes
    }
    let bcast_bytes = run(true);
    let unicast_bytes = run(false);
    // The replicated frame is counted per destination on reception, but the
    // unicast path additionally pays per-send injections; timing-wise the
    // key property is the single source-bus/wire occupancy, which shows up
    // as the bcast issuing all deliveries from one serialization window.
    assert!(bcast_bytes <= unicast_bytes);
}

#[test]
fn counted_event_reset_and_reuse() {
    let cl = cluster();
    let sim = Simulation::new();
    let a = Arc::new(ElanCtx::attach(&cl, 0).unwrap());
    let b = Arc::new(ElanCtx::attach(&cl, 1).unwrap());
    let mine = a.alloc(1024);
    let theirs = b.alloc(1024);
    sim.spawn("p", move |p| {
        let local = a.map(&p, &mine);
        let remote = b.map(&p, &theirs);
        let ev = a.event_create(2);
        let sig = p.signal();
        ev.set_signal(sig.clone());
        for round in 0..3 {
            a.rdma(&p, 0, DmaKind::Write, local, remote, 512, Some(ev.id()));
            a.rdma(
                &p,
                0,
                DmaKind::Write,
                local.offset(512),
                remote.offset(512),
                512,
                Some(ev.id()),
            );
            p.wait(&sig).expect_signaled();
            assert!(ev.take_fired_ready(), "round {round} did not fire");
            ev.reset(2);
        }
    });
    sim.run().unwrap();
    assert_eq!(cl.stats().rdmas, 6);
}

#[test]
fn event_write_qdma_decrements_remote_event() {
    // A child's arriving QDMA decrements the parent's counted event; when
    // the count hits zero a chained QDMA launches — all NIC→NIC.
    let cl = cluster();
    let sim = Simulation::new();
    let parent = Arc::new(ElanCtx::attach(&cl, 0).unwrap());
    let child = Arc::new(ElanCtx::attach(&cl, 1).unwrap());
    let observer = Arc::new(ElanCtx::attach(&cl, 2).unwrap());
    let pv = parent.vpid();
    let ov = observer.vpid();
    {
        let observer = observer.clone();
        sim.spawn("observer", move |p| {
            let q = observer.create_queue(4, 2048);
            let sig = p.signal();
            q.set_signal(sig.clone());
            let fin = q.wait_pop(&p, &sig, Dur::from_ns(100)).unwrap();
            assert_eq!(fin, vec![0xCC; 8]);
        });
    }
    {
        let parent = parent.clone();
        let child = child.clone();
        sim.spawn("tree", move |p| {
            let up = parent.event_create(2);
            up.chain_qdma(QdmaSpec::to_queue(ov, crate::QueueId(0), vec![0xCC; 8], 0));
            // One NIC-side arrival + one host enter.
            child.qdma_to_event(&p, 0, pv, up.id(), Vec::new());
            parent.set_event(&p, up.id(), None);
            p.advance(Dur::from_us(50));
            assert!(up.take_fired_ready());
        });
    }
    sim.run().unwrap();
    assert_eq!(cl.stats().event_writes, 1);
    assert_eq!(cl.stats().chained_launches, 1);
}

#[test]
fn auto_reset_event_survives_multiple_rounds() {
    let cl = cluster();
    let sim = Simulation::new();
    let a = Arc::new(ElanCtx::attach(&cl, 0).unwrap());
    let b = Arc::new(ElanCtx::attach(&cl, 1).unwrap());
    let av = a.vpid();
    sim.spawn("rounds", move |p| {
        let ev = a.event_create(2);
        ev.set_auto_reset(2);
        let sig = p.signal();
        ev.set_signal(sig.clone());
        for round in 0..3 {
            b.qdma_to_event(&p, 0, av, ev.id(), Vec::new());
            a.set_event(&p, ev.id(), None);
            loop {
                if ev.take_fired_ready() {
                    break;
                }
                p.wait(&sig).expect_signaled();
            }
            let _ = round;
        }
        // No extra fires latched: the count re-armed each round.
        assert!(!ev.take_fired_ready());
    });
    sim.run().unwrap();
    assert_eq!(cl.stats().event_writes, 3);
}

#[test]
fn event_combine_accumulates_and_forwards_payload() {
    // Two contributions sum on the NIC; the fire forwards the combined
    // payload to another context's event, whose host reads it back.
    let cl = cluster();
    let sim = Simulation::new();
    let mid = Arc::new(ElanCtx::attach(&cl, 0).unwrap());
    let leaf = Arc::new(ElanCtx::attach(&cl, 1).unwrap());
    let root = Arc::new(ElanCtx::attach(&cl, 2).unwrap());
    let mid_v = mid.vpid();
    let root_v = root.vpid();
    let root_ev = root.event_create(1);
    let root_id = root_ev.id();
    {
        let mid = mid.clone();
        let leaf = leaf.clone();
        sim.spawn("combine", move |p| {
            let up = mid.event_create(2);
            up.set_combine(crate::NicReduce::SumU64);
            up.chain_qdma(QdmaSpec::forward_to_event(root_v, root_id, 0));
            leaf.qdma_to_event(&p, 0, mid_v, up.id(), 5u64.to_le_bytes().to_vec());
            mid.set_event(&p, up.id(), Some(37u64.to_le_bytes().to_vec()));
        });
    }
    {
        sim.spawn("root", move |p| {
            let sig = p.signal();
            root_ev.set_signal(sig.clone());
            loop {
                if root_ev.take_fired_ready() {
                    break;
                }
                p.wait(&sig).expect_signaled();
            }
            let payload = root_ev.take_payload();
            assert_eq!(u64::from_le_bytes(payload.try_into().unwrap()), 42);
        });
    }
    sim.run().unwrap();
    assert_eq!(cl.stats().event_writes, 2);
}

#[test]
fn rdma_to_unmapped_address_faults() {
    let cl = cluster();
    let sim = Simulation::new();
    let a = Arc::new(ElanCtx::attach(&cl, 0).unwrap());
    let b = Arc::new(ElanCtx::attach(&cl, 1).unwrap());
    let mine = a.alloc(64);
    // Forge a remote address that was never mapped.
    let bogus = crate::E4Addr::from_raw(b.vpid(), 0xDEAD_0000);
    sim.spawn("p", move |p| {
        let local = a.map(&p, &mine);
        a.rdma(&p, 0, DmaKind::Write, local, bogus, 64, None);
    });
    match sim.run() {
        Err(qsim::SimError::ProcPanic { message, .. }) => {
            assert!(message.contains("MMU fault"), "got: {message}");
        }
        other => panic!("expected an MMU fault, got {other:?}"),
    }
}

#[test]
fn queues_are_isolated_between_contexts() {
    let cl = cluster();
    let sim = Simulation::new();
    // Two contexts on the same node, each with queue 0.
    let rx1 = Arc::new(ElanCtx::attach(&cl, 1).unwrap());
    let rx2 = Arc::new(ElanCtx::attach(&cl, 1).unwrap());
    let tx = Arc::new(ElanCtx::attach(&cl, 0).unwrap());
    let v1 = rx1.vpid();
    {
        let rx1 = rx1.clone();
        sim.spawn("rx1", move |p| {
            let q = rx1.create_queue(4, 2048);
            let sig = p.signal();
            q.set_signal(sig.clone());
            let m = q.wait_pop(&p, &sig, Dur::from_ns(100)).unwrap();
            assert_eq!(m, vec![0xAA; 16]);
        });
    }
    {
        let rx2 = rx2.clone();
        sim.spawn("rx2", move |p| {
            let q = rx2.create_queue(4, 2048);
            // Nothing should ever arrive here.
            p.advance(Dur::from_us(50));
            assert!(q.is_empty(), "message leaked into the wrong context");
        });
    }
    sim.spawn("tx", move |p| {
        p.advance(Dur::from_ns(20));
        tx.qdma(&p, 0, v1, crate::QueueId(0), vec![0xAA; 16], None);
    });
    sim.run().unwrap();
}

#[test]
fn tport_wildcard_source() {
    let cl = cluster();
    let sim = Simulation::new();
    let rx = Arc::new(ElanCtx::attach(&cl, 0).unwrap());
    let mut senders = Vec::new();
    for node in 1..=3 {
        senders.push(Arc::new(ElanCtx::attach(&cl, node).unwrap()));
    }
    let rxv = rx.vpid();
    {
        let rx = rx.clone();
        sim.spawn("rx", move |p| {
            let tp = Tport::new(rx.clone(), 0);
            let mut seen = [false; 3];
            for _ in 0..3 {
                let buf = rx.alloc(16);
                let r = tp.irecv(&p, crate::TPORT_ANY_SRC, TPORT_ANY_TAG, buf);
                let env = tp.wait_recv(&p, &r);
                let got = rx.read(&buf, 0, 16);
                assert!(got.iter().all(|&b| b == env.tag as u8));
                seen[(env.tag - 1) as usize] = true;
            }
            assert!(seen.iter().all(|s| *s));
        });
    }
    for (i, tx) in senders.iter().enumerate() {
        let tx = tx.clone();
        sim.spawn(&format!("tx{i}"), move |p| {
            p.advance(Dur::from_us(i as u64 * 3 + 1));
            let tp = Tport::new(tx.clone(), 0);
            let buf = tx.alloc(16);
            tx.write(&buf, 0, &[(i + 1) as u8; 16]);
            let s = tp.isend(&p, rxv, (i + 1) as i64, buf, 16);
            tp.wait_send(&p, &s);
        });
    }
    sim.run().unwrap();
}

#[test]
fn tport_same_node_loopback() {
    // Two contexts on the same node exchange through the NIC (hops = 0).
    let cl = cluster();
    let sim = Simulation::new();
    let a = Arc::new(ElanCtx::attach(&cl, 2).unwrap());
    let b = Arc::new(ElanCtx::attach(&cl, 2).unwrap());
    let vb = b.vpid();
    {
        let a = a.clone();
        sim.spawn("a", move |p| {
            let tp = Tport::new(a.clone(), 0);
            let buf = a.alloc(4000); // rendezvous path on the same node
            a.write(&buf, 0, &vec![0x3C; 4000]);
            let s = tp.isend(&p, vb, 9, buf, 4000);
            tp.wait_send(&p, &s);
        });
    }
    {
        let b = b.clone();
        sim.spawn("b", move |p| {
            let tp = Tport::new(b.clone(), 0);
            let buf = b.alloc(4000);
            let r = tp.irecv(&p, crate::TPORT_ANY_SRC, 9, buf);
            tp.wait_recv(&p, &r);
            assert_eq!(b.read(&buf, 0, 4000), vec![0x3C; 4000]);
        });
    }
    sim.run().unwrap();
}
