//! The Elan4 memory management unit (per context).
//!
//! Host buffers must be *mapped* before the NIC can move data to or from
//! them: mapping a [`HostBuf`] yields an [`E4Addr`], the translated address
//! format RDMA descriptors carry (paper §4.2). Any NIC resolving an
//! `E4Addr` consults the owning context's table; unmapped accesses fault.

use std::collections::BTreeMap;

use crate::types::{E4Addr, HostAddr, HostBuf, Vpid};

#[derive(Clone, Debug)]
struct Mapping {
    len: usize,
    host_off: usize,
}

/// Per-context translation table.
#[derive(Debug)]
pub struct Mmu {
    vpid: Vpid,
    node: qsnet::NodeId,
    next_va: u64,
    /// Keyed by starting `va`; VA ranges are disjoint, so a lookup is the
    /// floor entry (`range(..=va).next_back()`) plus one bounds check.
    maps: BTreeMap<u64, Mapping>,
}

/// An access through the MMU that does not hit a valid mapping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MmuFault {
    /// The context whose table was consulted.
    pub vpid: Vpid,
    /// The faulting Elan-virtual address.
    pub va: u64,
    /// The access length.
    pub len: usize,
}

impl std::fmt::Display for MmuFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "elan MMU fault: {} va={:#x} len={}",
            self.vpid, self.va, self.len
        )
    }
}

impl std::error::Error for MmuFault {}

impl Mmu {
    /// An empty translation table for one context.
    pub fn new(vpid: Vpid, node: qsnet::NodeId) -> Self {
        Mmu {
            vpid,
            node,
            // Start away from zero so an uninitialized E4Addr faults.
            next_va: 0x1000,
            maps: BTreeMap::new(),
        }
    }

    /// Map a host buffer into Elan space.
    ///
    /// # Panics
    /// If the buffer belongs to another node.
    pub fn map(&mut self, buf: HostBuf) -> E4Addr {
        assert_eq!(buf.addr.node, self.node, "mapping a remote node's memory");
        let va = self.next_va;
        // Keep VA ranges disjoint even for zero-length maps.
        self.next_va += (buf.len as u64).max(1).next_multiple_of(0x1000);
        self.maps.insert(
            va,
            Mapping {
                len: buf.len,
                host_off: buf.addr.off,
            },
        );
        E4Addr {
            vpid: self.vpid,
            va,
        }
    }

    /// Remove the mapping that starts at `addr`.
    pub fn unmap(&mut self, addr: E4Addr) -> bool {
        self.maps.remove(&addr.va).is_some()
    }

    /// Translate an Elan-virtual range to a host address, checking bounds.
    pub fn translate(&self, addr: E4Addr, len: usize) -> Result<HostAddr, MmuFault> {
        debug_assert_eq!(addr.vpid, self.vpid);
        // Ranges are disjoint, so only the mapping at or below `va` can
        // contain the access.
        if let Some((va, m)) = self.maps.range(..=addr.va).next_back() {
            if addr.va + len as u64 <= va + m.len as u64 {
                return Ok(HostAddr {
                    node: self.node,
                    off: m.host_off + (addr.va - va) as usize,
                });
            }
        }
        Err(MmuFault {
            vpid: self.vpid,
            va: addr.va,
            len,
        })
    }

    /// Number of live mappings (leak checks in tests).
    pub fn mapping_count(&self) -> usize {
        self.maps.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn buf(node: usize, off: usize, len: usize) -> HostBuf {
        HostBuf {
            addr: HostAddr { node, off },
            len,
        }
    }

    #[test]
    fn map_translate_roundtrip() {
        let mut mmu = Mmu::new(Vpid(5), 2);
        let e4 = mmu.map(buf(2, 4096, 1000));
        let h = mmu.translate(e4, 1000).unwrap();
        assert_eq!(h, HostAddr { node: 2, off: 4096 });
        let h2 = mmu.translate(e4.offset(100), 900).unwrap();
        assert_eq!(h2.off, 4196);
    }

    #[test]
    fn out_of_bounds_faults() {
        let mut mmu = Mmu::new(Vpid(0), 0);
        let e4 = mmu.map(buf(0, 0, 100));
        assert!(mmu.translate(e4, 101).is_err());
        assert!(mmu.translate(e4.offset(50), 51).is_err());
        assert!(mmu.translate(e4.offset(50), 50).is_ok());
    }

    #[test]
    fn unmapped_address_faults() {
        let mmu = Mmu::new(Vpid(0), 0);
        let bogus = E4Addr {
            vpid: Vpid(0),
            va: 0,
        };
        assert!(mmu.translate(bogus, 1).is_err());
    }

    #[test]
    fn unmap_invalidates() {
        let mut mmu = Mmu::new(Vpid(0), 0);
        let e4 = mmu.map(buf(0, 0, 100));
        assert!(mmu.unmap(e4));
        assert!(!mmu.unmap(e4));
        assert!(mmu.translate(e4, 1).is_err());
    }

    #[test]
    fn distinct_mappings_do_not_alias() {
        let mut mmu = Mmu::new(Vpid(0), 0);
        let a = mmu.map(buf(0, 0, 4096));
        let b = mmu.map(buf(0, 8192, 4096));
        assert_ne!(a.va, b.va);
        assert_eq!(mmu.translate(b, 1).unwrap().off, 8192);
        assert_eq!(mmu.mapping_count(), 2);
    }

    #[test]
    #[should_panic(expected = "remote node's memory")]
    fn cross_node_map_panics() {
        let mut mmu = Mmu::new(Vpid(0), 0);
        mmu.map(buf(1, 0, 16));
    }
}
