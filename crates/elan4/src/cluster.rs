//! The simulated cluster: per-node main memory + PCI-X bus, per-context NIC
//! state (MMU, receive queues, events), and the QDMA/RDMA engines that move
//! bytes through the [`qsnet::Fabric`].
//!
//! All mutable state sits behind one mutex; the `qsim` kernel serializes
//! every process and device callback, so the lock is uncontended and exists
//! only to satisfy `Send`/`Sync`.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::Arc;

use qsim::Mutex;
use qsim::{Signal, SimHandle, Time};
use qsnet::{Fabric, FabricConfig, NodeId};

use crate::alloc::Allocator;
use crate::config::NicConfig;
use crate::mmu::Mmu;
use crate::types::{DmaKind, E4Addr, EventId, HostAddr, QueueId, Vpid};

/// Where a QDMA lands on the destination NIC.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QdmaTarget {
    /// Deposit into a receive queue slot (the classic QDMA).
    Queue(QueueId),
    /// Write a remote counted event: the arrival decrements the event and
    /// hands the payload to its combine buffer — no queue slot, no host.
    /// This is the inter-hop primitive of NIC-resident collectives.
    Event(EventId),
}

/// A small message to be queued (QDMA) — possibly launched from a chained
/// event without host involvement.
#[derive(Clone, Debug)]
pub struct QdmaSpec {
    /// Destination context.
    pub dst: Vpid,
    /// Destination receive queue or counted event.
    pub target: QdmaTarget,
    /// Message bytes (≤ 2 KB).
    pub data: Vec<u8>,
    /// Rail to inject on.
    pub rail: usize,
    /// For chained specs: replace `data` at launch time with the payload
    /// captured by the firing event (forwarding combined partials up a
    /// reduction tree, or a broadcast payload down one).
    pub payload_from_event: bool,
}

impl QdmaSpec {
    /// A QDMA into a receive queue.
    pub fn to_queue(dst: Vpid, queue: QueueId, data: Vec<u8>, rail: usize) -> QdmaSpec {
        QdmaSpec {
            dst,
            target: QdmaTarget::Queue(queue),
            data,
            rail,
            payload_from_event: false,
        }
    }

    /// A QDMA that writes a remote counted event, carrying `data` into its
    /// combine buffer.
    pub fn to_event(dst: Vpid, event: EventId, data: Vec<u8>, rail: usize) -> QdmaSpec {
        QdmaSpec {
            dst,
            target: QdmaTarget::Event(event),
            data,
            rail,
            payload_from_event: false,
        }
    }

    /// A chained event-write whose payload is resolved when the chaining
    /// event fires (the firing event's captured payload is forwarded).
    pub fn forward_to_event(dst: Vpid, event: EventId, rail: usize) -> QdmaSpec {
        QdmaSpec {
            dst,
            target: QdmaTarget::Event(event),
            data: Vec::new(),
            rail,
            payload_from_event: true,
        }
    }
}

/// Reduction the NIC thread processor applies when combining event-write
/// payloads (64-bit little-endian lanes). Only commutative/associative ops
/// are offloadable; anything else stays on the host path.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum NicReduce {
    /// Lane-wise `f64` sum.
    SumF64,
    /// Lane-wise `f64` max.
    MaxF64,
    /// Lane-wise wrapping `u64` sum.
    SumU64,
}

/// Combine `data` into `acc` lane-by-lane. An empty accumulator adopts the
/// payload unchanged (the first contribution seeds it).
fn nic_combine(acc: &mut Vec<u8>, data: &[u8], op: NicReduce) {
    if acc.is_empty() {
        acc.extend_from_slice(data);
        return;
    }
    assert_eq!(acc.len(), data.len(), "NIC combine length mismatch");
    for (a, d) in acc.chunks_exact_mut(8).zip(data.chunks_exact(8)) {
        let x = <[u8; 8]>::try_from(&*a).unwrap();
        let y = <[u8; 8]>::try_from(d).unwrap();
        let out = match op {
            NicReduce::SumF64 => (f64::from_le_bytes(x) + f64::from_le_bytes(y)).to_le_bytes(),
            NicReduce::MaxF64 => f64::from_le_bytes(x)
                .max(f64::from_le_bytes(y))
                .to_le_bytes(),
            NicReduce::SumU64 => u64::from_le_bytes(x)
                .wrapping_add(u64::from_le_bytes(y))
                .to_le_bytes(),
        };
        a.copy_from_slice(&out);
    }
}

pub(crate) struct QueueState {
    pub slot_size: usize,
    pub nslots: usize,
    pub slots: VecDeque<Vec<u8>>,
    pub signal: Option<Signal>,
    pub irq_armed: bool,
    /// Deposits that found the queue full and are waiting to retry.
    pub overflowed: u64,
}

pub(crate) struct EventState {
    pub count: i64,
    /// Number of times the count reached zero, minus consumed fires.
    pub fired: u64,
    pub signal: Option<Signal>,
    pub irq_armed: bool,
    pub chained: Vec<QdmaSpec>,
    pub freed: bool,
    /// Re-arm the count by this much on every fire. This is what makes a
    /// standing collective program reusable across iterations: arrivals for
    /// the next round simply pre-decrement the re-armed count.
    pub auto_reset: Option<i64>,
    /// NIC-side reduction applied to arriving event-write payloads.
    pub combine: Option<NicReduce>,
    /// Payloads combined since the last fire.
    pub accum: Vec<u8>,
    /// Payloads captured at each fire, oldest first (forwarded by chained
    /// specs with `payload_from_event`, consumed in order by the host). A
    /// FIFO rather than a latest-wins word: pipelined rounds of a standing
    /// program may fire an event again before the host drains the previous
    /// payload.
    pub fired_payloads: VecDeque<Vec<u8>>,
}

pub(crate) struct CtxState {
    #[allow(dead_code)]
    pub node: NodeId,
    pub mmu: Mmu,
    pub queues: Vec<Option<QueueState>>,
    pub events: Vec<EventState>,
    pub tport: crate::tport::TportState,
}

pub(crate) struct NodeState {
    pub mem: Vec<u8>,
    pub alloc: Allocator,
    /// PCI-X availability per rail: each Elan4 adapter sits in its own
    /// PCI-X slot, so rails have independent host-bus bandwidth (as in the
    /// multirail systems of Coll et al. that the paper cites).
    pub bus_free: Vec<Time>,
    /// NIC command-processor availability per rail: commands (QDMA/RDMA
    /// launches) serialize through the Elan4 thread processor, which is
    /// what bounds small-message issue rate.
    pub cmdq_free: Vec<Time>,
    /// Receive-side deposit engine availability per rail: queue-slot
    /// writes also serialize, bounding small-message reception rate.
    pub deposit_free: Vec<Time>,
}

/// Running counters for tests and benches.
#[derive(Clone, Debug, Default)]
pub struct ClusterStats {
    /// QDMA messages issued.
    pub qdmas: u64,
    /// Hardware broadcasts issued.
    pub hw_bcasts: u64,
    /// RDMA descriptors issued.
    pub rdmas: u64,
    /// Bytes moved by RDMA.
    pub rdma_bytes: u64,
    /// Chained commands launched by fired events.
    pub chained_launches: u64,
    /// QDMA deposits that targeted a remote counted event (collective
    /// program hops) instead of a receive queue.
    pub event_writes: u64,
    /// Host interrupts generated.
    pub interrupts: u64,
    /// Deposits that found a full queue (each retries).
    pub queue_overflows: u64,
    /// Deposits corrupted by fault injection.
    pub corrupted_deposits: u64,
}

pub(crate) struct ClusterInner {
    pub nodes: Vec<NodeState>,
    pub ctxs: HashMap<u32, CtxState>,
    pub free_ctxs: Vec<Vec<u16>>,
    pub stats: ClusterStats,
    /// Fault injection: payload-carrying QDMA deposits to corrupt (flips
    /// one byte past the 64-byte header).
    pub corrupt_deposits: u64,
}

/// The whole simulated machine: fabric + NICs + node memory.
pub struct Cluster {
    pub(crate) cfg: NicConfig,
    pub(crate) fabric: Arc<Fabric>,
    pub(crate) inner: Mutex<ClusterInner>,
}

impl Cluster {
    /// Build the simulated machine: fabric, per-node memory, NIC state.
    pub fn new(cfg: NicConfig, fabric_cfg: FabricConfig) -> Arc<Cluster> {
        let fabric = Fabric::new(fabric_cfg);
        let nodes = (0..fabric.config().nodes)
            .map(|_| NodeState {
                mem: vec![0u8; cfg.node_mem],
                alloc: Allocator::new(cfg.node_mem),
                bus_free: vec![Time::ZERO; fabric.config().rails],
                cmdq_free: vec![Time::ZERO; fabric.config().rails],
                deposit_free: vec![Time::ZERO; fabric.config().rails],
            })
            .collect();
        let free_ctxs = (0..fabric.config().nodes)
            .map(|_| (0..cfg.ctxs_per_node).rev().collect())
            .collect();
        Arc::new(Cluster {
            cfg,
            fabric,
            inner: Mutex::new(ClusterInner {
                nodes,
                ctxs: HashMap::new(),
                free_ctxs,
                stats: ClusterStats::default(),
                corrupt_deposits: 0,
            }),
        })
    }

    /// NIC timing parameters.
    pub fn cfg(&self) -> &NicConfig {
        &self.cfg
    }

    /// The wire this machine is built on.
    pub fn fabric(&self) -> &Arc<Fabric> {
        &self.fabric
    }

    /// Host count.
    pub fn nodes(&self) -> usize {
        self.fabric.config().nodes
    }

    /// Rail count.
    pub fn rails(&self) -> usize {
        self.fabric.config().rails
    }

    /// Snapshot of the NIC-level counters.
    pub fn stats(&self) -> ClusterStats {
        self.inner.lock().stats.clone()
    }

    /// Bytes currently allocated on `node` (leak checks in tests).
    pub fn mem_in_use(&self, node: NodeId) -> usize {
        self.inner.lock().nodes[node].alloc.in_use()
    }

    /// Fault injection: corrupt one payload byte in each of the next
    /// `count` payload-carrying QDMA deposits (models undetected wire or
    /// DMA data corruption, which end-to-end integrity checking exists to
    /// catch).
    pub fn inject_payload_corruption(&self, count: u64) {
        self.inner.lock().corrupt_deposits += count;
    }

    /// Claim a context on `node` out of the system-wide capability. This is
    /// the dynamic-join primitive: processes may attach (and detach) at any
    /// time during the run.
    pub(crate) fn claim_ctx(&self, node: NodeId) -> Option<Vpid> {
        let mut inner = self.inner.lock();
        let ctx = inner.free_ctxs[node].pop()?;
        let vpid = Vpid::new(node, ctx, self.cfg.ctxs_per_node);
        inner.ctxs.insert(
            vpid.raw(),
            CtxState {
                node,
                mmu: Mmu::new(vpid, node),
                queues: Vec::new(),
                events: Vec::new(),
                tport: crate::tport::TportState::default(),
            },
        );
        Some(vpid)
    }

    /// Release a context back to the capability (the disjoin half of
    /// dynamic process management). Safe to call with live traffic in
    /// flight: subsequent DMAs to the context are dropped.
    pub fn release_ctx(&self, vpid: Vpid) {
        let mut inner = self.inner.lock();
        if inner.ctxs.remove(&vpid.raw()).is_some() {
            let node = vpid.node(self.cfg.ctxs_per_node);
            let ctx = (vpid.raw() - node as u32 * self.cfg.ctxs_per_node as u32) as u16;
            inner.free_ctxs[node].push(ctx);
        }
    }

    /// Is a context currently attached? (Connection liveness for PTLs.)
    pub fn ctx_alive(&self, vpid: Vpid) -> bool {
        self.inner.lock().ctxs.contains_key(&vpid.raw())
    }

    // ---- host memory -----------------------------------------------------

    pub(crate) fn mem_read(&self, addr: HostAddr, len: usize) -> Vec<u8> {
        let inner = self.inner.lock();
        inner.nodes[addr.node].mem[addr.off..addr.off + len].to_vec()
    }

    pub(crate) fn mem_write(&self, addr: HostAddr, data: &[u8]) {
        let mut inner = self.inner.lock();
        inner.nodes[addr.node].mem[addr.off..addr.off + data.len()].copy_from_slice(data);
    }

    // ---- engines ---------------------------------------------------------

    /// Reserve the NIC command processor of `(node, rail)` starting no
    /// earlier than `earliest`; returns the time the command has been
    /// launched. Commands serialize: this is the per-NIC message-rate
    /// ceiling.
    pub(crate) fn cmdq_acquire(
        inner: &mut ClusterInner,
        cfg: &NicConfig,
        node: NodeId,
        rail: usize,
        earliest: Time,
    ) -> Time {
        let start = earliest.max(inner.nodes[node].cmdq_free[rail]);
        let done = start + cfg.cmd_process;
        inner.nodes[node].cmdq_free[rail] = done;
        done
    }

    /// Reserve the receive-side deposit engine of `(node, rail)`; returns
    /// the completion time of the slot write.
    pub(crate) fn deposit_acquire(
        inner: &mut ClusterInner,
        cfg: &NicConfig,
        node: NodeId,
        rail: usize,
        earliest: Time,
    ) -> Time {
        let start = earliest.max(inner.nodes[node].deposit_free[rail]);
        let done = start + cfg.qdma_deposit;
        inner.nodes[node].deposit_free[rail] = done;
        done
    }

    /// Reserve the PCI-X bus of `node`'s rail-`rail` adapter for `len`
    /// bytes starting no earlier than `earliest`; returns the completion
    /// time of the bus transaction.
    pub(crate) fn bus_acquire(
        inner: &mut ClusterInner,
        cfg: &NicConfig,
        node: NodeId,
        rail: usize,
        earliest: Time,
        len: usize,
    ) -> Time {
        let start = earliest.max(inner.nodes[node].bus_free[rail]);
        let done = start + cfg.bus_setup + cfg.bus(len);
        inner.nodes[node].bus_free[rail] = done;
        done
    }

    /// Issue a QDMA from `src_vpid`'s NIC: the command is already in the NIC
    /// (launch at `start`), payload `data` goes into `dst`'s receive queue.
    /// `local_event`, if any, fires on the issuing NIC once the payload has
    /// been pulled from host memory (send buffer reusable).
    pub(crate) fn qdma_from_nic(
        self: &Arc<Self>,
        sim: &SimHandle,
        start: Time,
        src_vpid: Vpid,
        spec: QdmaSpec,
        local_event: Option<EventId>,
    ) {
        let cfg = self.cfg.clone();
        let src_node = src_vpid.node(cfg.ctxs_per_node);
        let dst_node = spec.dst.node(cfg.ctxs_per_node);
        let len = spec.data.len();

        let (bus_done, delivered) = {
            let mut inner = self.inner.lock();
            inner.stats.qdmas += 1;
            let launched = Self::cmdq_acquire(&mut inner, &cfg, src_node, spec.rail, start);
            let bus_done = Self::bus_acquire(&mut inner, &cfg, src_node, spec.rail, launched, len);
            drop(inner);
            let delivered = self
                .fabric
                .packet_delivery(spec.rail, src_node, dst_node, len, bus_done);
            (bus_done, delivered)
        };

        // Local completion: send buffer drained from host memory.
        if let Some(ev) = local_event {
            let me = self.clone();
            sim.call_at(bus_done + cfg.event_fire, move |s| {
                me.event_complete(s, src_vpid, ev);
            });
        }

        // Remote deposit after the destination bus writes the slot.
        let me = self.clone();
        sim.call_at(delivered, move |s| {
            let rail = spec.rail;
            let deposit_at = {
                let mut inner = me.inner.lock();
                let bus = Self::bus_acquire(&mut inner, &me.cfg, dst_node, rail, s.now(), len);
                Self::deposit_acquire(&mut inner, &me.cfg, dst_node, rail, bus)
            };
            let me2 = me.clone();
            s.call_at(deposit_at, move |s| me2.deposit(s, spec));
        });
    }

    /// Place a QDMA payload at its destination: a queue slot (retrying
    /// while full) or a remote counted event (the collective-program hop).
    fn deposit(self: &Arc<Self>, sim: &SimHandle, mut spec: QdmaSpec) {
        let qid = match spec.target {
            QdmaTarget::Event(ev) => {
                // Event writes bypass the queue machinery entirely: the
                // deposit engine writes the event word (and its combine
                // buffer), which may fire further chained commands.
                self.inner.lock().stats.event_writes += 1;
                let payload = if spec.data.is_empty() {
                    None
                } else {
                    Some(spec.data)
                };
                self.event_complete_with_data(sim, spec.dst, ev, payload);
                return;
            }
            QdmaTarget::Queue(q) => q,
        };
        let mut inner = self.inner.lock();
        if inner.corrupt_deposits > 0 && spec.data.len() > 64 {
            inner.corrupt_deposits -= 1;
            inner.stats.corrupted_deposits += 1;
            let idx = 64 + (spec.data.len() - 64) / 2;
            spec.data[idx] ^= 0x5A;
        }
        let cfg_retry = self.cfg.queue_retry;
        let irq_latency = self.cfg.irq_latency;
        let Some(ctx) = inner.ctxs.get_mut(&spec.dst.raw()) else {
            // Destination detached: the message is dropped on the floor,
            // like a DMA to a revoked context. Finalize must drain first
            // (paper §4.1).
            return;
        };
        let Some(Some(q)) = ctx.queues.get_mut(qid.0 as usize) else {
            return;
        };
        assert!(
            spec.data.len() <= q.slot_size,
            "QDMA payload {} exceeds slot size {}",
            spec.data.len(),
            q.slot_size
        );
        if q.slots.len() >= q.nslots {
            q.overflowed += 1;
            inner.stats.queue_overflows += 1;
            let me = self.clone();
            sim.call_after(cfg_retry, move |s| me.deposit(s, spec));
            return;
        }
        q.slots.push_back(spec.data);
        let signal = q.signal.clone();
        let irq = q.irq_armed;
        if irq {
            inner.stats.interrupts += 1;
        }
        drop(inner);
        if let Some(sig) = signal {
            if irq {
                sim.call_after(irq_latency, move |s| sig.notify(s));
            } else {
                sig.notify(sim);
            }
        }
    }

    /// Issue an RDMA. For `Write`, data moves local -> remote; for `Read`, a
    /// request packet travels to the remote NIC which streams data back.
    /// `done_event` fires on the **issuing** NIC when the transfer completes
    /// (data landed), decrementing its count; chained QDMAs launch from the
    /// event.
    ///
    /// MTU-sized chunks pipeline across the three stages (source bus, wire,
    /// destination bus), so long transfers run at the slowest stage's rate
    /// while short ones pay each stage's latency in sequence.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn rdma_from_nic(
        self: &Arc<Self>,
        sim: &SimHandle,
        start: Time,
        issuer: Vpid,
        rail: usize,
        kind: DmaKind,
        local: E4Addr,
        remote: E4Addr,
        len: usize,
        done_event: Option<EventId>,
    ) {
        assert_eq!(
            local.owner(),
            issuer,
            "local E4Addr owned by another context"
        );
        let cfg = self.cfg.clone();
        let issuer_node = issuer.node(cfg.ctxs_per_node);
        let remote_node = remote.owner().node(cfg.ctxs_per_node);

        // Resolve translations up front (faults surface at issue).
        let (local_host, remote_host) = {
            let inner = self.inner.lock();
            let lctx = inner
                .ctxs
                .get(&issuer.raw())
                .expect("issuing context detached");
            let rctx = inner
                .ctxs
                .get(&remote.owner().raw())
                .unwrap_or_else(|| panic!("RDMA target context {} detached", remote.owner()));
            let lh = lctx.mmu.translate(local, len).expect("local MMU fault");
            let rh = rctx.mmu.translate(remote, len).expect("remote MMU fault");
            (lh, rh)
        };

        let launched = {
            let mut inner = self.inner.lock();
            Self::cmdq_acquire(&mut inner, &cfg, issuer_node, rail, start)
        };
        let (src_node, dst_node, src_host, dst_host, data_start) = match kind {
            DmaKind::Write => (issuer_node, remote_node, local_host, remote_host, launched),
            DmaKind::Read => {
                // Request packet to the data source, then its NIC launches.
                let req_arrival = self.fabric.packet_delivery(
                    rail,
                    issuer_node,
                    remote_node,
                    cfg.rdma_req_bytes,
                    launched,
                );
                let remote_launch = {
                    let mut inner = self.inner.lock();
                    Self::cmdq_acquire(&mut inner, &cfg, remote_node, rail, req_arrival)
                };
                (
                    remote_node,
                    issuer_node,
                    remote_host,
                    local_host,
                    remote_launch,
                )
            }
        };

        {
            let mut inner = self.inner.lock();
            inner.stats.rdmas += 1;
            inner.stats.rdma_bytes += len as u64;
        }

        // Chunk pipeline. A zero-length RDMA still makes one (empty) packet.
        let mtu = self.fabric.config().mtu;
        let mut remaining = len;
        let mut cursor = data_start;
        let mut completed;
        loop {
            let chunk = remaining.min(mtu);
            let bus_done = {
                let mut inner = self.inner.lock();
                Self::bus_acquire(&mut inner, &cfg, src_node, rail, cursor, chunk)
            };
            let delivered = self
                .fabric
                .packet_delivery(rail, src_node, dst_node, chunk, bus_done);
            let landed = {
                let mut inner = self.inner.lock();
                Self::bus_acquire(&mut inner, &cfg, dst_node, rail, delivered, chunk)
            };
            completed = landed;
            // The source bus can start the next chunk as soon as it is free;
            // `bus_acquire` already serializes it, so don't gate on delivery.
            cursor = bus_done;
            if remaining <= mtu {
                break;
            }
            remaining -= chunk;
        }

        // Move the actual bytes and fire the completion event when done.
        let me = self.clone();
        sim.call_at(completed + cfg.event_fire, move |s| {
            if len > 0 {
                let data = me.mem_read(src_host, len);
                me.mem_write(dst_host, &data);
            }
            if let Some(ev) = done_event {
                me.event_complete(s, issuer, ev);
            }
        });
    }

    /// Hardware broadcast (paper §4.1): one NIC injection, replicated by
    /// the Elite switches to every target queue. Requires the global
    /// virtual address space of a synchronously-created capability — the
    /// caller is responsible for that gate. Per-target payloads may differ
    /// only in header sequencing; the wire carries the frame once.
    pub(crate) fn hw_bcast_from_nic(
        self: &Arc<Self>,
        sim: &SimHandle,
        start: Time,
        src_vpid: Vpid,
        rail: usize,
        targets: Vec<(Vpid, QueueId, Vec<u8>)>,
        local_event: Option<EventId>,
    ) {
        let cfg = self.cfg.clone();
        let src_node = src_vpid.node(cfg.ctxs_per_node);
        let len = targets.iter().map(|t| t.2.len()).max().unwrap_or(0);

        let bus_done = {
            let mut inner = self.inner.lock();
            inner.stats.hw_bcasts += 1;
            let launched = Self::cmdq_acquire(&mut inner, &cfg, src_node, rail, start);
            Self::bus_acquire(&mut inner, &cfg, src_node, rail, launched, len)
        };
        if let Some(ev) = local_event {
            let me = self.clone();
            sim.call_at(bus_done + cfg.event_fire, move |s| {
                me.event_complete(s, src_vpid, ev);
            });
        }
        let dst_nodes: Vec<usize> = targets
            .iter()
            .map(|(v, _, _)| v.node(cfg.ctxs_per_node))
            .collect();
        let deliveries = self
            .fabric
            .bcast_delivery(rail, src_node, &dst_nodes, len, bus_done);
        for ((vpid, qid, data), delivered) in targets.into_iter().zip(deliveries) {
            let me = self.clone();
            let dst_node = vpid.node(cfg.ctxs_per_node);
            let spec = QdmaSpec::to_queue(vpid, qid, data, rail);
            sim.call_at(delivered, move |s| {
                let deposit_at = {
                    let mut inner = me.inner.lock();
                    let bus = Self::bus_acquire(&mut inner, &me.cfg, dst_node, rail, s.now(), len);
                    Self::deposit_acquire(&mut inner, &me.cfg, dst_node, rail, bus)
                };
                let me2 = me.clone();
                s.call_at(deposit_at, move |s| me2.deposit(s, spec));
            });
        }
    }

    /// Decrement an event's count; on reaching zero: latch the fire, notify
    /// the host (optionally via interrupt), and launch any chained QDMA.
    pub(crate) fn event_complete(self: &Arc<Self>, sim: &SimHandle, vpid: Vpid, ev: EventId) {
        self.event_complete_with_data(sim, vpid, ev, None);
    }

    /// [`Cluster::event_complete`] carrying an arriving event-write payload.
    /// The payload is folded into the event's combine buffer (or adopted
    /// verbatim when no reduction is configured); on fire the buffer is
    /// captured for the host and for chained payload-forwarding specs, and
    /// an auto-reset event re-arms its count for the next round.
    pub(crate) fn event_complete_with_data(
        self: &Arc<Self>,
        sim: &SimHandle,
        vpid: Vpid,
        ev: EventId,
        data: Option<Vec<u8>>,
    ) {
        let mut inner = self.inner.lock();
        let irq_latency = self.cfg.irq_latency;
        let chain_latency = self.cfg.chain_latency;
        let Some(ctx) = inner.ctxs.get_mut(&vpid.raw()) else {
            return;
        };
        let st = &mut ctx.events[ev.0 as usize];
        if st.freed {
            return;
        }
        if let Some(d) = data {
            match st.combine {
                Some(op) => nic_combine(&mut st.accum, &d, op),
                None => st.accum = d,
            }
        }
        st.count -= 1;
        if st.count > 0 {
            return;
        }
        st.fired += 1;
        if let Some(rearm) = st.auto_reset {
            st.count += rearm;
        }
        let payload = std::mem::take(&mut st.accum);
        st.fired_payloads.push_back(payload.clone());
        let signal = st.signal.clone();
        let irq = st.irq_armed;
        let chained = st.chained.clone();
        if irq {
            inner.stats.interrupts += 1;
        }
        inner.stats.chained_launches += chained.len() as u64;
        drop(inner);
        if let Some(sig) = signal {
            if irq {
                sim.call_after(irq_latency, move |s| sig.notify(s));
            } else {
                sig.notify(sim);
            }
        }
        for mut spec in chained {
            // Chained commands launch on the NIC without crossing the I/O
            // bus: no PIO, just the chain launch latency.
            if spec.payload_from_event {
                spec.data = payload.clone();
            }
            let me = self.clone();
            let at = sim.now() + chain_latency;
            sim.call_at(at, move |s| {
                me.qdma_from_nic(s, s.now(), vpid, spec, None);
            });
        }
    }
}
