//! NIC and host-side timing constants.
//!
//! These are the *model inputs* of the reproduction (see DESIGN.md §5).
//! Defaults are calibrated so that the simulated testbed lands near the
//! paper's measured points (e.g. ~3.9 µs basic 4-byte RDMA-read latency,
//! ~900 MB/s peak bandwidth, ~+10 µs for interrupt-driven progress).

use qsim::Dur;

/// Timing and sizing parameters of one simulated Elan4 NIC plus the host it
/// sits in.
#[derive(Clone, Debug)]
pub struct NicConfig {
    /// Contexts available per node (sizes the system-wide capability).
    pub ctxs_per_node: u16,
    /// Bytes of main memory per node backing simulated allocations.
    pub node_mem: usize,
    /// Host programmed-I/O write of a command descriptor into the NIC
    /// command port (per command).
    pub pio_cmd: Dur,
    /// NIC firmware time to launch one command.
    pub cmd_process: Dur,
    /// Per-DMA-transaction setup on the PCI-X bus.
    pub bus_setup: Dur,
    /// PCI-X 64/133 effective bandwidth, bytes per microsecond.
    pub bus_bytes_per_us: u64,
    /// NIC time to deposit a QDMA message into a receive-queue slot and
    /// bump the queue's write pointer.
    pub qdma_deposit: Dur,
    /// Firing an Elan event (writing the host event word).
    pub event_fire: Dur,
    /// Launching a chained command from a fired event (stays on the NIC;
    /// this replaces a host turnaround + PIO when chaining is used).
    pub chain_latency: Dur,
    /// Host cost of one poll check of a host event word.
    pub poll_check: Dur,
    /// Event fire -> blocked host thread resumes (interrupt delivery,
    /// kernel IRQ path, scheduler wakeup). The paper attributes ~10 µs per
    /// message to interrupts; a ping-pong half round trip crosses two
    /// blocking waits.
    pub irq_latency: Dur,
    /// Size of the request packet a reading NIC sends to the data source.
    pub rdma_req_bytes: usize,
    /// Host memcpy bandwidth in bytes per microsecond (used by callers to
    /// model copies into/out of send buffers and queue slots).
    pub memcpy_bytes_per_us: u64,
    /// Retry interval when a destination queue is full.
    pub queue_retry: Dur,
    /// NIC-side Tport costs (MPICH baseline): matching one incoming
    /// envelope against the posted-receive table.
    pub tport_match: Dur,
    /// Eager/rendezvous switchover of the Tport protocol.
    pub tport_eager: usize,
    /// Fixed host cost of establishing one MMU mapping: pinning the pages
    /// and writing the translation into the NIC's MMU (syscall + command
    /// port traffic, independent of length).
    pub map_base: Dur,
    /// Incremental mapping cost per 4 KiB page covered by the buffer
    /// (page-table walk + per-entry MMU load).
    pub map_per_page: Dur,
    /// Tearing a mapping down: invalidating the NIC TLB entries and
    /// unpinning (the shootdown makes unmap cheaper than map but never
    /// free).
    pub unmap_shootdown: Dur,
}

impl Default for NicConfig {
    fn default() -> Self {
        NicConfig {
            ctxs_per_node: 64,
            node_mem: 64 << 20,
            pio_cmd: Dur::from_ns(250),
            cmd_process: Dur::from_ns(200),
            bus_setup: Dur::from_ns(300),
            bus_bytes_per_us: 1067,
            qdma_deposit: Dur::from_ns(600),
            event_fire: Dur::from_ns(100),
            chain_latency: Dur::from_ns(150),
            poll_check: Dur::from_ns(250),
            irq_latency: Dur::from_ns(5_400),
            rdma_req_bytes: 32,
            memcpy_bytes_per_us: 2850,
            queue_retry: Dur::from_us(1),
            tport_match: Dur::from_ns(350),
            tport_eager: 2048 - 32,
            map_base: Dur::from_ns(700),
            map_per_page: Dur::from_ns(150),
            unmap_shootdown: Dur::from_ns(500),
        }
    }
}

impl NicConfig {
    /// Host memcpy duration for `len` bytes.
    pub fn memcpy(&self, len: usize) -> Dur {
        Dur::for_bytes(len, self.memcpy_bytes_per_us)
    }

    /// Bus transfer duration for `len` bytes (excluding setup).
    pub fn bus(&self, len: usize) -> Dur {
        Dur::for_bytes(len, self.bus_bytes_per_us)
    }

    /// Cost of mapping a `len`-byte buffer into the NIC MMU: the fixed
    /// pin/command cost plus a per-4KiB-page translation load. Zero-length
    /// buffers still pin one page.
    pub fn map_cost(&self, len: usize) -> Dur {
        let pages = (len.max(1) as u64).div_ceil(0x1000);
        self.map_base + self.map_per_page * pages
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = NicConfig::default();
        assert!(c.bus_bytes_per_us < 1300, "PCI-X is the bottleneck stage");
        assert_eq!(c.memcpy(2850).as_ns(), 1_000);
        assert_eq!(c.bus(1067).as_ns(), 1_000);
    }

    #[test]
    fn map_cost_scales_with_pages() {
        let c = NicConfig::default();
        // One page minimum, even for tiny or empty buffers.
        assert_eq!(c.map_cost(0), c.map_cost(1));
        assert_eq!(c.map_cost(1), c.map_cost(0x1000));
        // Each extra 4 KiB page adds exactly map_per_page.
        let one = c.map_cost(0x1000);
        let two = c.map_cost(0x1001);
        assert_eq!(two.as_ns() - one.as_ns(), c.map_per_page.as_ns());
        // Unmap (shootdown) is cheaper than any map.
        assert!(c.unmap_shootdown < c.map_cost(1));
    }
}
