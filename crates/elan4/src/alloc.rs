//! First-fit free-list allocator over a node's simulated main memory.
//!
//! Simple by design: allocations are 64-byte aligned (cache-line-ish), and
//! adjacent free blocks coalesce on free. The allocator only hands out
//! offsets; the byte storage lives in the node's arena.

const ALIGN: usize = 64;

#[derive(Clone, Debug)]
struct FreeBlock {
    off: usize,
    len: usize,
}

/// Offset allocator for one node's arena.
#[derive(Debug)]
pub struct Allocator {
    capacity: usize,
    /// Sorted by offset; no two blocks adjacent (always coalesced).
    free: Vec<FreeBlock>,
    in_use: usize,
}

fn align_up(v: usize) -> usize {
    v.div_ceil(ALIGN) * ALIGN
}

impl Allocator {
    pub fn new(capacity: usize) -> Self {
        Allocator {
            capacity,
            free: vec![FreeBlock {
                off: 0,
                len: capacity,
            }],
            in_use: 0,
        }
    }

    #[allow(dead_code)]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn in_use(&self) -> usize {
        self.in_use
    }

    /// Allocate `len` bytes; returns the offset, or `None` if out of memory.
    pub fn alloc(&mut self, len: usize) -> Option<usize> {
        let len = align_up(len.max(1));
        for i in 0..self.free.len() {
            if self.free[i].len >= len {
                let off = self.free[i].off;
                self.free[i].off += len;
                self.free[i].len -= len;
                if self.free[i].len == 0 {
                    self.free.remove(i);
                }
                self.in_use += len;
                return Some(off);
            }
        }
        None
    }

    /// Return a block allocated with the same `len` passed to [`alloc`].
    ///
    /// # Panics
    /// On double free or overlapping free (model-integrity checks).
    pub fn free(&mut self, off: usize, len: usize) {
        let len = align_up(len.max(1));
        assert!(off + len <= self.capacity, "free out of range");
        let idx = self.free.partition_point(|b| b.off < off);
        if let Some(prev) = idx.checked_sub(1).map(|i| &self.free[i]) {
            assert!(
                prev.off + prev.len <= off,
                "overlapping free (double free?)"
            );
        }
        if let Some(next) = self.free.get(idx) {
            assert!(off + len <= next.off, "overlapping free (double free?)");
        }
        self.in_use -= len;
        self.free.insert(idx, FreeBlock { off, len });
        // Coalesce with neighbours.
        if idx + 1 < self.free.len()
            && self.free[idx].off + self.free[idx].len == self.free[idx + 1].off
        {
            self.free[idx].len += self.free[idx + 1].len;
            self.free.remove(idx + 1);
        }
        if idx > 0 && self.free[idx - 1].off + self.free[idx - 1].len == self.free[idx].off {
            self.free[idx - 1].len += self.free[idx].len;
            self.free.remove(idx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    #[cfg(feature = "proptest")]
    use proptest::prelude::*;

    #[test]
    fn alloc_free_roundtrip() {
        let mut a = Allocator::new(1 << 20);
        let x = a.alloc(100).unwrap();
        let y = a.alloc(200).unwrap();
        assert_ne!(x, y);
        a.free(x, 100);
        a.free(y, 200);
        assert_eq!(a.in_use(), 0);
        // after full free, the arena coalesces back to one block
        assert_eq!(a.free.len(), 1);
        assert_eq!(a.free[0].len, 1 << 20);
    }

    #[test]
    fn alignment() {
        let mut a = Allocator::new(4096);
        let x = a.alloc(1).unwrap();
        let y = a.alloc(1).unwrap();
        assert_eq!(x % ALIGN, 0);
        assert_eq!(y % ALIGN, 0);
        assert!(y >= x + ALIGN);
    }

    #[test]
    fn out_of_memory_is_none() {
        let mut a = Allocator::new(128);
        assert!(a.alloc(256).is_none());
        assert!(a.alloc(128).is_some());
        assert!(a.alloc(1).is_none());
    }

    #[test]
    #[should_panic(expected = "overlapping free")]
    fn double_free_panics() {
        let mut a = Allocator::new(4096);
        let x = a.alloc(64).unwrap();
        a.free(x, 64);
        a.free(x, 64);
    }

    #[cfg(feature = "proptest")]
    proptest! {
        #[test]
        fn allocations_never_overlap(ops in proptest::collection::vec(1usize..5000, 1..60)) {
            let mut a = Allocator::new(1 << 20);
            let mut live: Vec<(usize, usize)> = Vec::new();
            for (i, len) in ops.iter().enumerate() {
                if i % 3 == 2 && !live.is_empty() {
                    let (off, l) = live.swap_remove(i % live.len());
                    a.free(off, l);
                } else if let Some(off) = a.alloc(*len) {
                    let end = off + len;
                    for &(o, l) in &live {
                        let aligned = super::align_up(*len);
                        prop_assert!(end <= o || off >= o + l,
                            "overlap: [{off},{}) vs [{o},{}) aligned={aligned}", end, o + l);
                    }
                    live.push((off, *len));
                }
            }
            // free everything; arena must return to a single block
            for (off, l) in live {
                a.free(off, l);
            }
            prop_assert_eq!(a.in_use(), 0);
        }
    }
}
