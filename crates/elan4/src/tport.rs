//! Tport: the NIC-resident tagged message port used by MPICH-QsNetII.
//!
//! This is the *comparator's* transport. The NIC keeps the posted-receive
//! table and does tag matching itself, so a matched eager message lands in
//! the user buffer with no host round trip; large messages are pulled by the
//! receiving NIC in pipelined chunks as soon as the envelope matches. The
//! Open MPI PTL deliberately does *not* use this (paper §6.5): its
//! host-side shared request queues are the price of multi-network
//! concurrency and MPI-2 dynamic process support.

use std::collections::VecDeque;
use std::sync::Arc;

use qsim::{Proc, Signal, SimHandle};

use crate::cluster::Cluster;
use crate::ctx::ElanCtx;
use crate::types::{HostAddr, HostBuf, Vpid};

/// Tag wildcard for receives.
pub const TPORT_ANY_TAG: i64 = -1;
/// Source wildcard for receives.
pub const TPORT_ANY_SRC: u32 = u32::MAX;

/// Match information delivered with a completed receive.
#[derive(Clone, Debug)]
pub struct TportEnvelope {
    /// Sending context.
    pub src: Vpid,
    /// Message tag.
    pub tag: i64,
    /// Message length in bytes.
    pub len: usize,
}

/// A receive posted into the NIC's matching table.
struct PostedRecv {
    src: u32,
    tag: i64,
    buf: HostBuf,
    seq: u64,
    signal: Signal,
    done: Arc<qsim::Mutex<Option<TportEnvelope>>>,
}

/// A message that arrived before its receive was posted. Small messages
/// carry their payload (buffered NIC-side); large ones are represented by
/// the source descriptor so the data can be pulled on match.
struct UnexpectedMsg {
    env: TportEnvelope,
    eager: Option<Vec<u8>>,
    src_addr: HostAddr,
    rail: usize,
    src_done: SenderDone,
}

#[derive(Clone)]
struct SenderDone {
    signal: Signal,
    flag: Arc<qsim::Mutex<bool>>,
}

/// Per-context NIC tport state.
#[derive(Default)]
pub struct TportState {
    posted: Vec<PostedRecv>,
    unexpected: VecDeque<UnexpectedMsg>,
    next_post_seq: u64,
}

/// Host handle for tagged-port communication on an attached context.
pub struct Tport {
    ctx: Arc<ElanCtx>,
    rail: usize,
}

/// Handle for a pending receive.
pub struct TportRecv {
    signal: Signal,
    done: Arc<qsim::Mutex<Option<TportEnvelope>>>,
}

/// Handle for a pending send.
pub struct TportSend {
    signal: Signal,
    flag: Arc<qsim::Mutex<bool>>,
}

impl Tport {
    /// Open a tagged port over `ctx` on `rail`.
    pub fn new(ctx: Arc<ElanCtx>, rail: usize) -> Tport {
        Tport { ctx, rail }
    }

    /// The context this port is bound to.
    pub fn ctx(&self) -> &Arc<ElanCtx> {
        &self.ctx
    }

    /// Post a tagged receive into `buf`. Matching happens on the NIC; the
    /// returned handle completes when data has landed in `buf`.
    pub fn irecv(&self, proc: &Proc, src: u32, tag: i64, buf: HostBuf) -> TportRecv {
        let cluster = self.ctx.cluster().clone();
        proc.advance(cluster.cfg().pio_cmd);
        let signal = proc.signal();
        let done: Arc<qsim::Mutex<Option<TportEnvelope>>> = Arc::new(qsim::Mutex::new(None));
        let vpid = self.ctx.vpid();
        let rail = self.rail;

        let sim = proc.sim();
        let match_at = proc.now() + cluster.cfg().cmd_process + cluster.cfg().tport_match;
        let r_done = done.clone();
        let r_sig = signal.clone();
        let cl = cluster;
        sim.call_at(match_at, move |s| {
            let mut inner = cl.inner.lock();
            let Some(ctx) = inner.ctxs.get_mut(&vpid.raw()) else {
                return;
            };
            let tp = &mut ctx.tport;
            let pos = tp
                .unexpected
                .iter()
                .position(|m| tag_match(src, tag, m.env.src, m.env.tag));
            if let Some(i) = pos {
                let msg = tp.unexpected.remove(i).unwrap();
                drop(inner);
                deliver_matched(&cl, s, msg, buf, r_done, r_sig);
            } else {
                let seq = tp.next_post_seq;
                tp.next_post_seq += 1;
                tp.posted.push(PostedRecv {
                    src,
                    tag,
                    buf,
                    seq,
                    signal: r_sig,
                    done: r_done,
                });
            }
            let _ = rail;
        });
        TportRecv { signal, done }
    }

    /// Send `len` bytes of `buf` to `(dst, tag)`. Small messages go eagerly
    /// with a 32-byte header; large ones send an envelope and are pulled by
    /// the destination NIC once matched.
    pub fn isend(&self, proc: &Proc, dst: Vpid, tag: i64, buf: HostBuf, len: usize) -> TportSend {
        assert!(len <= buf.len);
        let cluster = self.ctx.cluster().clone();
        let cfg = cluster.cfg().clone();
        proc.advance(cfg.pio_cmd);
        let signal = proc.signal();
        let flag = Arc::new(qsim::Mutex::new(false));
        let src = self.ctx.vpid();
        let rail = self.rail;
        let env = TportEnvelope { src, tag, len };
        let sim = proc.sim();
        let src_node = self.ctx.node();
        let dst_node = dst.node(cfg.ctxs_per_node);
        let sender_done = SenderDone {
            signal: signal.clone(),
            flag: flag.clone(),
        };

        let eager = len <= cfg.tport_eager;
        let start = proc.now();
        let src_addr = HostAddr {
            node: buf.addr.node,
            off: buf.addr.off,
        };
        let payload: Option<Vec<u8>> = eager.then(|| cluster.mem_read(src_addr, len));
        let wire_len = 32 + if eager { len } else { 0 };

        let bus_done = {
            let mut inner = cluster.inner.lock();
            let launched = Cluster::cmdq_acquire(&mut inner, &cfg, src_node, rail, start);
            Cluster::bus_acquire(&mut inner, &cfg, src_node, rail, launched, wire_len)
        };
        let delivered = cluster
            .fabric()
            .packet_delivery(rail, src_node, dst_node, wire_len, bus_done);

        if eager {
            // Sender completes once the payload has left host memory.
            let sd = sender_done.clone();
            sim.call_at(bus_done + cfg.event_fire, move |s| {
                *sd.flag.lock() = true;
                sd.signal.notify(s);
            });
        }

        let cl = cluster.clone();
        sim.call_at(delivered + cfg.tport_match, move |s| {
            nic_arrival(
                &cl,
                s,
                dst,
                UnexpectedMsg {
                    env,
                    eager: payload,
                    src_addr,
                    rail,
                    src_done: sender_done,
                },
            );
        });
        TportSend { signal, flag }
    }

    /// Block until the receive completes; returns the matched envelope.
    pub fn wait_recv(&self, proc: &Proc, r: &TportRecv) -> TportEnvelope {
        loop {
            if let Some(env) = r.done.lock().clone() {
                return env;
            }
            proc.wait(&r.signal).expect_signaled();
            proc.advance(self.ctx.cluster().cfg().poll_check);
        }
    }

    /// Block until the send completes (buffer reusable).
    pub fn wait_send(&self, proc: &Proc, send: &TportSend) {
        loop {
            if *send.flag.lock() {
                return;
            }
            proc.wait(&send.signal).expect_signaled();
            proc.advance(self.ctx.cluster().cfg().poll_check);
        }
    }
}

impl TportRecv {
    /// Has the receive completed?
    pub fn is_done(&self) -> bool {
        self.done.lock().is_some()
    }
}

impl TportSend {
    /// Has the send completed (buffer reusable)?
    pub fn is_done(&self) -> bool {
        *self.flag.lock()
    }
}

fn tag_match(want_src: u32, want_tag: i64, src: Vpid, tag: i64) -> bool {
    (want_src == TPORT_ANY_SRC || want_src == src.raw())
        && (want_tag == TPORT_ANY_TAG || want_tag == tag)
}

/// NIC-side handling of an arriving envelope at the destination.
fn nic_arrival(cluster: &Arc<Cluster>, sim: &SimHandle, dst: Vpid, msg: UnexpectedMsg) {
    let mut inner = cluster.inner.lock();
    let Some(ctx) = inner.ctxs.get_mut(&dst.raw()) else {
        return;
    };
    let tp = &mut ctx.tport;
    let mut best: Option<usize> = None;
    for (i, p) in tp.posted.iter().enumerate() {
        if tag_match(p.src, p.tag, msg.env.src, msg.env.tag)
            && best.map(|b| tp.posted[b].seq > p.seq).unwrap_or(true)
        {
            best = Some(i);
        }
    }
    if let Some(i) = best {
        let p = tp.posted.remove(i);
        drop(inner);
        deliver_matched(cluster, sim, msg, p.buf, p.done, p.signal);
    } else {
        tp.unexpected.push_back(msg);
    }
}

/// Move a matched message into the user buffer and complete both sides.
fn deliver_matched(
    cluster: &Arc<Cluster>,
    sim: &SimHandle,
    msg: UnexpectedMsg,
    buf: HostBuf,
    done: Arc<qsim::Mutex<Option<TportEnvelope>>>,
    signal: Signal,
) {
    let cfg = cluster.cfg().clone();
    let len = msg.env.len.min(buf.len);
    let dst_node = buf.addr.node;
    let dst_addr = HostAddr {
        node: buf.addr.node,
        off: buf.addr.off,
    };

    if let Some(payload) = msg.eager {
        // Eager data is already at the NIC: one bus write into the buffer.
        let landed = {
            let mut inner = cluster.inner.lock();
            Cluster::bus_acquire(&mut inner, &cfg, dst_node, msg.rail, sim.now(), len)
        } + cfg.event_fire;
        let cl = cluster.clone();
        sim.call_at(landed, move |s| {
            cl.mem_write(dst_addr, &payload[..len]);
            *done.lock() = Some(msg.env);
            signal.notify(s);
        });
        return;
    }

    // Rendezvous: the destination NIC pulls the data, streaming MTU-sized
    // packets through source bus / wire / destination bus. No host is
    // involved at either end — this is Tport's mid-range advantage.
    let src_node = msg.src_addr.node;
    let rail = msg.rail;
    let req_arrival =
        cluster
            .fabric()
            .packet_delivery(rail, dst_node, src_node, cfg.rdma_req_bytes, sim.now());
    let mut cursor = req_arrival + cfg.cmd_process;
    let mut completed;
    let mtu = cluster.fabric().config().mtu;
    let mut remaining = len;
    loop {
        let pkt = remaining.min(mtu);
        let bus_done = {
            let mut inner = cluster.inner.lock();
            Cluster::bus_acquire(&mut inner, &cfg, src_node, rail, cursor, pkt)
        };
        let delivered = cluster
            .fabric()
            .packet_delivery(rail, src_node, dst_node, pkt, bus_done);
        completed = {
            let mut inner = cluster.inner.lock();
            Cluster::bus_acquire(&mut inner, &cfg, dst_node, rail, delivered, pkt)
        };
        cursor = bus_done;
        if remaining <= mtu {
            break;
        }
        remaining -= pkt;
    }

    let cl = cluster.clone();
    let src_addr = msg.src_addr;
    let src_done = msg.src_done;
    sim.call_at(completed + cfg.event_fire, move |s| {
        if len > 0 {
            let data = cl.mem_read(src_addr, len);
            cl.mem_write(dst_addr, &data);
        }
        *done.lock() = Some(msg.env);
        signal.notify(s);
        // Sender-side completion rides back on the pull's final ack.
        *src_done.flag.lock() = true;
        src_done.signal.notify(s);
    });
}
