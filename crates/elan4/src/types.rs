//! Identifier and address types shared across the NIC model.

use qsnet::NodeId;

/// Quadrics virtual process id: a (node, context) pair flattened into one
/// network-addressable integer. Decoupled from the MPI rank — the paper's
/// first design point.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Vpid(pub u32);

impl Vpid {
    pub(crate) fn new(node: NodeId, ctx: u16, ctxs_per_node: u16) -> Vpid {
        Vpid(node as u32 * ctxs_per_node as u32 + ctx as u32)
    }

    pub(crate) fn node(self, ctxs_per_node: u16) -> NodeId {
        (self.0 / ctxs_per_node as u32) as NodeId
    }

    /// The network-addressable integer value.
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl std::fmt::Display for Vpid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "vpid{}", self.0)
    }
}

/// A host-virtual address inside a node's simulated main memory.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct HostAddr {
    /// Which node's memory arena.
    pub node: NodeId,
    /// Byte offset within the arena (the "virtual address").
    pub off: usize,
}

/// An allocated region of host memory.
#[derive(Copy, Clone, Debug)]
pub struct HostBuf {
    /// Start of the region.
    pub addr: HostAddr,
    /// Length in bytes.
    pub len: usize,
}

impl HostBuf {
    /// A sub-range of this buffer.
    ///
    /// # Panics
    /// If the range exceeds the buffer.
    pub fn slice(&self, off: usize, len: usize) -> HostBuf {
        assert!(off + len <= self.len, "slice out of bounds");
        HostBuf {
            addr: HostAddr {
                node: self.addr.node,
                off: self.addr.off + off,
            },
            len,
        }
    }
}

/// An Elan-network-visible address: the translated (`E4 Addr`) form a DMA
/// descriptor must carry. Owned by a context's MMU; other NICs resolve it
/// through that context's translation table.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct E4Addr {
    pub(crate) vpid: Vpid,
    pub(crate) va: u64,
}

impl E4Addr {
    /// Reconstruct an address received over the wire (vpid + value).
    pub fn from_raw(vpid: Vpid, va: u64) -> E4Addr {
        E4Addr { vpid, va }
    }

    /// The context that owns the mapping.
    pub fn owner(&self) -> Vpid {
        self.vpid
    }

    /// The Elan-virtual address value.
    pub fn value(&self) -> u64 {
        self.va
    }

    /// Address arithmetic within one mapped region.
    pub fn offset(&self, delta: usize) -> E4Addr {
        E4Addr {
            vpid: self.vpid,
            va: self.va + delta as u64,
        }
    }
}

/// Identifies one receive queue within a context.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct QueueId(pub u16);

/// Identifies one Elan event within a context.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct EventId(pub u32);

/// RDMA direction.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum DmaKind {
    /// Local memory -> remote memory.
    Write,
    /// Remote memory -> local memory.
    Read,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vpid_roundtrip() {
        let v = Vpid::new(3, 7, 64);
        assert_eq!(v.raw(), 3 * 64 + 7);
        assert_eq!(v.node(64), 3);
    }

    #[test]
    fn hostbuf_slice() {
        let b = HostBuf {
            addr: HostAddr { node: 1, off: 100 },
            len: 50,
        };
        let s = b.slice(10, 20);
        assert_eq!(s.addr.off, 110);
        assert_eq!(s.len, 20);
    }

    #[test]
    #[should_panic(expected = "slice out of bounds")]
    fn hostbuf_slice_oob() {
        let b = HostBuf {
            addr: HostAddr { node: 0, off: 0 },
            len: 10,
        };
        let _ = b.slice(5, 6);
    }
}
