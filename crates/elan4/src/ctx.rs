//! Host-side handles: the `libelan4`-flavoured API a process uses after
//! attaching to the NIC.
//!
//! Every operation that crosses the host/NIC boundary takes a [`qsim::Proc`]
//! so its host-visible cost (PIO writes, poll checks) advances that
//! process's virtual clock; NIC-side costs run asynchronously through the
//! event queue.

use std::sync::Arc;

use qsim::{Dur, Proc, Signal, Wait};
use qsnet::NodeId;

use crate::cluster::{Cluster, EventState, QdmaSpec, QueueState};
use crate::types::{DmaKind, E4Addr, EventId, HostAddr, HostBuf, QueueId, Vpid};

/// A claimed Elan4 context: the per-process NIC endpoint.
///
/// Dropping the handle does *not* release the context (finalization is an
/// explicit protocol step in the paper); call [`ElanCtx::detach`].
pub struct ElanCtx {
    cluster: Arc<Cluster>,
    vpid: Vpid,
    node: NodeId,
}

impl ElanCtx {
    /// Claim a free context on `node` (dynamic join). Returns `None` when
    /// the node's capability is exhausted.
    pub fn attach(cluster: &Arc<Cluster>, node: NodeId) -> Option<ElanCtx> {
        let vpid = cluster.claim_ctx(node)?;
        Some(ElanCtx {
            cluster: cluster.clone(),
            vpid,
            node,
        })
    }

    /// This context's network address.
    pub fn vpid(&self) -> Vpid {
        self.vpid
    }

    /// The node this context lives on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The machine this context is attached to.
    pub fn cluster(&self) -> &Arc<Cluster> {
        &self.cluster
    }

    /// Release the context back to the system-wide capability.
    pub fn detach(self) {
        self.cluster.release_ctx(self.vpid);
    }

    // ---- memory ----------------------------------------------------------

    /// Allocate host memory on this node.
    ///
    /// # Panics
    /// When the node arena is exhausted.
    pub fn alloc(&self, len: usize) -> HostBuf {
        let mut inner = self.cluster.inner.lock();
        let off = inner.nodes[self.node]
            .alloc
            .alloc(len)
            .expect("node memory exhausted");
        HostBuf {
            addr: HostAddr {
                node: self.node,
                off,
            },
            len,
        }
    }

    /// Return a buffer to the node arena.
    pub fn free(&self, buf: HostBuf) {
        assert_eq!(buf.addr.node, self.node);
        let mut inner = self.cluster.inner.lock();
        inner.nodes[self.node].alloc.free(buf.addr.off, buf.len);
    }

    /// Untimed host store (cost is the caller's to model, typically via
    /// [`ElanCtx::memcpy_cost`]).
    pub fn write(&self, buf: &HostBuf, off: usize, data: &[u8]) {
        assert!(off + data.len() <= buf.len, "write out of bounds");
        self.cluster.mem_write(
            HostAddr {
                node: buf.addr.node,
                off: buf.addr.off + off,
            },
            data,
        );
    }

    /// Untimed host load.
    pub fn read(&self, buf: &HostBuf, off: usize, len: usize) -> Vec<u8> {
        assert!(off + len <= buf.len, "read out of bounds");
        self.cluster.mem_read(
            HostAddr {
                node: buf.addr.node,
                off: buf.addr.off + off,
            },
            len,
        )
    }

    /// Host memcpy cost for `len` bytes.
    pub fn memcpy_cost(&self, len: usize) -> Dur {
        self.cluster.cfg.memcpy(len)
    }

    /// Map a buffer into Elan space (the "expanded memory descriptor" of
    /// paper §4.2). Charges the calling process the registration cost —
    /// pinning plus per-page MMU loads ([`NicConfig::map_cost`]) — before
    /// the translation becomes visible.
    ///
    /// [`NicConfig::map_cost`]: crate::NicConfig::map_cost
    pub fn map(&self, proc: &Proc, buf: &HostBuf) -> E4Addr {
        proc.advance(self.cluster.cfg.map_cost(buf.len));
        let mut inner = self.cluster.inner.lock();
        inner
            .ctxs
            .get_mut(&self.vpid.raw())
            .expect("context detached")
            .mmu
            .map(*buf)
    }

    /// Remove an Elan-space mapping; returns false if it was not mapped.
    /// Charges the calling process the TLB-shootdown/unpin cost.
    pub fn unmap(&self, proc: &Proc, addr: E4Addr) -> bool {
        proc.advance(self.cluster.cfg.unmap_shootdown);
        let mut inner = self.cluster.inner.lock();
        inner
            .ctxs
            .get_mut(&self.vpid.raw())
            .expect("context detached")
            .mmu
            .unmap(addr)
    }

    /// Live mappings in this context's MMU (leak checks). A detached
    /// context has no MMU state left, hence no mappings.
    pub fn mapping_count(&self) -> usize {
        let inner = self.cluster.inner.lock();
        inner
            .ctxs
            .get(&self.vpid.raw())
            .map(|c| c.mmu.mapping_count())
            .unwrap_or(0)
    }

    // ---- queues ----------------------------------------------------------

    /// Create a receive queue with `nslots` slots of `slot_size` bytes (the
    /// Quadrics QSLOTS). Slot size is capped at 2 KB like real QDMA.
    pub fn create_queue(&self, nslots: usize, slot_size: usize) -> RxQueue {
        assert!(slot_size <= 2048, "QDMA slots are at most 2KB");
        assert!(nslots > 0);
        let mut inner = self.cluster.inner.lock();
        let ctx = inner
            .ctxs
            .get_mut(&self.vpid.raw())
            .expect("context detached");
        let qid = QueueId(ctx.queues.len() as u16);
        ctx.queues.push(Some(QueueState {
            slot_size,
            nslots,
            slots: Default::default(),
            signal: None,
            irq_armed: false,
            overflowed: 0,
        }));
        RxQueue {
            cluster: self.cluster.clone(),
            vpid: self.vpid,
            qid,
        }
    }

    // ---- QDMA ------------------------------------------------------------

    /// Post a queued DMA of `data` (≤ destination slot size) to `dst`'s
    /// queue `qid`. Costs one PIO write on the calling process; the rest is
    /// asynchronous. `local_event` fires once the payload has left host
    /// memory.
    pub fn qdma(
        &self,
        proc: &Proc,
        rail: usize,
        dst: Vpid,
        qid: QueueId,
        data: Vec<u8>,
        local_event: Option<EventId>,
    ) {
        assert!(data.len() <= 2048, "QDMA messages are at most 2KB");
        proc.advance(self.cluster.cfg.pio_cmd);
        // cmd_process is charged as command-processor occupancy inside the
        // cluster engines, not as a latency offset here.
        let start = proc.now();
        let spec = QdmaSpec::to_queue(dst, qid, data, rail);
        self.cluster
            .qdma_from_nic(&proc.sim(), start, self.vpid, spec, local_event);
    }

    /// Post a QDMA that writes a *remote counted event*: the arrival
    /// decrements `event` in `dst`'s context, carrying `data` into its
    /// combine buffer. One PIO write on the calling process; no receive
    /// queue is touched. This is how a host injects itself into a standing
    /// NIC collective program on another rank.
    pub fn qdma_to_event(
        &self,
        proc: &Proc,
        rail: usize,
        dst: Vpid,
        event: EventId,
        data: Vec<u8>,
    ) {
        assert!(data.len() <= 2048, "QDMA messages are at most 2KB");
        proc.advance(self.cluster.cfg.pio_cmd);
        let start = proc.now();
        let spec = QdmaSpec::to_event(dst, event, data, rail);
        self.cluster
            .qdma_from_nic(&proc.sim(), start, self.vpid, spec, None);
    }

    /// Hardware broadcast: deliver one ≤2 KB frame to the queues of many
    /// peers with a single NIC injection (the switches replicate it).
    /// Only valid across a synchronously-created set of contexts; the
    /// upper layer enforces the paper's global-address-space gate.
    pub fn hw_bcast(
        &self,
        proc: &Proc,
        rail: usize,
        targets: Vec<(Vpid, QueueId, Vec<u8>)>,
        local_event: Option<EventId>,
    ) {
        assert!(
            targets.iter().all(|t| t.2.len() <= 2048),
            "broadcast frames are at most 2KB"
        );
        proc.advance(self.cluster.cfg.pio_cmd);
        let start = proc.now();
        self.cluster
            .hw_bcast_from_nic(&proc.sim(), start, self.vpid, rail, targets, local_event);
    }

    // ---- RDMA ------------------------------------------------------------

    /// Post an RDMA descriptor. `local` must be owned by this context;
    /// `remote` names the peer mapping. `done` fires locally on completion.
    #[allow(clippy::too_many_arguments)]
    pub fn rdma(
        &self,
        proc: &Proc,
        rail: usize,
        kind: DmaKind,
        local: E4Addr,
        remote: E4Addr,
        len: usize,
        done: Option<EventId>,
    ) {
        proc.advance(self.cluster.cfg.pio_cmd);
        let start = proc.now();
        self.cluster.rdma_from_nic(
            &proc.sim(),
            start,
            self.vpid,
            rail,
            kind,
            local,
            remote,
            len,
            done,
        );
    }

    // ---- events ----------------------------------------------------------

    /// Create an Elan event with the given completion count (Fig. 5b).
    pub fn event_create(&self, count: u32) -> ElanEvent {
        let mut inner = self.cluster.inner.lock();
        let ctx = inner
            .ctxs
            .get_mut(&self.vpid.raw())
            .expect("context detached");
        let id = EventId(ctx.events.len() as u32);
        ctx.events.push(EventState {
            count: count as i64,
            fired: 0,
            signal: None,
            irq_armed: false,
            chained: Vec::new(),
            freed: false,
            auto_reset: None,
            combine: None,
            accum: Vec::new(),
            fired_payloads: std::collections::VecDeque::new(),
        });
        ElanEvent {
            cluster: self.cluster.clone(),
            vpid: self.vpid,
            id,
        }
    }

    /// Host-side event trigger (a PIO store to the event word): decrement a
    /// *local* event, optionally contributing `data` to its combine buffer.
    /// This is how the host "enters" an armed NIC collective program —
    /// after this single store, every further hop is NIC→NIC.
    pub fn set_event(&self, proc: &Proc, event: EventId, data: Option<Vec<u8>>) {
        proc.advance(self.cluster.cfg.pio_cmd);
        self.cluster
            .event_complete_with_data(&proc.sim(), self.vpid, event, data);
    }
}

/// Host handle onto a QDMA receive queue.
pub struct RxQueue {
    cluster: Arc<Cluster>,
    vpid: Vpid,
    qid: QueueId,
}

impl RxQueue {
    /// Queue id within the owning context.
    pub fn id(&self) -> QueueId {
        self.qid
    }

    /// The context that created the queue.
    pub fn owner(&self) -> Vpid {
        self.vpid
    }

    fn with_state<R>(&self, f: impl FnOnce(&mut QueueState) -> R) -> R {
        let mut inner = self.cluster.inner.lock();
        let ctx = inner
            .ctxs
            .get_mut(&self.vpid.raw())
            .expect("context detached");
        let q = ctx.queues[self.qid.0 as usize]
            .as_mut()
            .expect("queue destroyed");
        f(q)
    }

    /// One polling check of the queue's host event word; pops the front
    /// message if present. Costs `poll_check` on the calling process.
    pub fn try_pop(&self, proc: &Proc) -> Option<Vec<u8>> {
        proc.advance(self.cluster.cfg.poll_check);
        self.with_state(|q| q.slots.pop_front())
    }

    /// Pop without the poll cost (used right after a signalled wakeup,
    /// where the detection cost has been paid already).
    pub fn pop_ready(&self) -> Option<Vec<u8>> {
        self.with_state(|q| q.slots.pop_front())
    }

    /// True when no message is waiting.
    pub fn is_empty(&self) -> bool {
        self.with_state(|q| q.slots.is_empty())
    }

    /// How many deposits found the queue full (each retried).
    pub fn overflow_count(&self) -> u64 {
        self.with_state(|q| q.overflowed)
    }

    /// Register `sig` to be notified on every deposit. With
    /// [`RxQueue::arm_irq`] the notification models an interrupt (delayed by
    /// `irq_latency`); otherwise it models the host observing the event word.
    pub fn set_signal(&self, sig: Signal) {
        self.with_state(|q| q.signal = Some(sig));
    }

    /// Generate a host interrupt on every deposit (vs. polled host events).
    pub fn arm_irq(&self, armed: bool) {
        self.with_state(|q| q.irq_armed = armed);
    }

    /// Block until a message is available, then pop it. `detect_cost` is
    /// charged after wakeup (poll-detection or interrupt-return overhead).
    pub fn wait_pop(&self, proc: &Proc, sig: &Signal, detect_cost: Dur) -> Result<Vec<u8>, Wait> {
        loop {
            if let Some(m) = self.pop_ready() {
                return Ok(m);
            }
            match proc.wait(sig) {
                Wait::Signaled => {
                    if detect_cost > Dur::ZERO {
                        proc.advance(detect_cost);
                    }
                }
                Wait::Shutdown => return Err(Wait::Shutdown),
            }
        }
    }
}

/// Host handle onto an Elan event.
pub struct ElanEvent {
    cluster: Arc<Cluster>,
    vpid: Vpid,
    id: EventId,
}

impl ElanEvent {
    /// Event id within the owning context.
    pub fn id(&self) -> EventId {
        self.id
    }

    fn with_state<R>(&self, f: impl FnOnce(&mut EventState) -> R) -> R {
        let mut inner = self.cluster.inner.lock();
        let ctx = inner
            .ctxs
            .get_mut(&self.vpid.raw())
            .expect("context detached");
        f(&mut ctx.events[self.id.0 as usize])
    }

    /// Consume one latched fire if present (a host poll of the event word).
    pub fn take_fired(&self, proc: &Proc) -> bool {
        proc.advance(self.cluster.cfg.poll_check);
        self.take_fired_ready()
    }

    /// Consume one latched fire without the poll cost.
    pub fn take_fired_ready(&self) -> bool {
        self.with_state(|e| {
            if e.fired > 0 {
                e.fired -= 1;
                true
            } else {
                false
            }
        })
    }

    /// Re-arm with a fresh count. The paper's Fig. 5c/5d race (host reset vs
    /// NIC decrement) does not arise here because the simulation serializes
    /// them — which is exactly why the real design needs the shared
    /// completion queue instead.
    pub fn reset(&self, count: u32) {
        self.with_state(|e| e.count = count as i64);
    }

    /// Make the event self-re-arming: every fire adds `count` back, so a
    /// standing collective program survives round after round without the
    /// host racing the NIC to reset it. Early arrivals for the next round
    /// simply pre-decrement the re-armed count.
    pub fn set_auto_reset(&self, count: u32) {
        self.with_state(|e| e.auto_reset = Some(count as i64));
    }

    /// Configure the NIC-side reduction applied to arriving event-write
    /// payloads (64-bit LE lanes). Without one, the latest payload wins —
    /// the broadcast-forwarding mode.
    pub fn set_combine(&self, op: crate::cluster::NicReduce) {
        self.with_state(|e| e.combine = Some(op));
    }

    /// Pop the oldest unconsumed fire payload (the combined partials of a
    /// reduction round, or a forwarded broadcast frame). Payloads queue in
    /// fire order, so pipelined rounds of a standing program never clobber
    /// a frame the host has not drained yet.
    pub fn take_payload(&self) -> Vec<u8> {
        self.with_state(|e| e.fired_payloads.pop_front().unwrap_or_default())
    }

    /// Notify `sig` when the event fires (host-event observation).
    pub fn set_signal(&self, sig: Signal) {
        self.with_state(|e| e.signal = Some(sig));
    }

    /// Deliver the fire as an interrupt (adds `irq_latency`).
    pub fn arm_irq(&self, armed: bool) {
        self.with_state(|e| e.irq_armed = armed);
    }

    /// Chain a QDMA to this event: launched by the NIC when the count hits
    /// zero (the paper's chained-event mechanism). Multiple chained QDMAs
    /// launch in the order they were attached.
    pub fn chain_qdma(&self, spec: QdmaSpec) {
        self.with_state(|e| e.chained.push(spec));
    }

    /// Drop any chained commands.
    pub fn clear_chain(&self) {
        self.with_state(|e| e.chained.clear());
    }

    /// Mark the event dead; stale completions are ignored.
    pub fn free(&self) {
        self.with_state(|e| e.freed = true);
    }
}

impl std::fmt::Debug for ElanCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ElanCtx({}, node {})", self.vpid, self.node)
    }
}
