//! # ompi-io — MPI-IO-style parallel I/O
//!
//! "Scalable I/O support" is one of the Open MPI goals the paper's
//! introduction lists. This crate provides the smallest faithful version:
//! a striped parallel file system in virtual time ([`Pfs`]) and an
//! MPI-IO-flavoured interface ([`File`]) with independent `read_at`/
//! `write_at` and a collective `write_all` where each rank deposits its
//! block, the accesses fanning out over the I/O nodes concurrently.

#![warn(missing_docs)]

mod pfs;

pub use pfs::{Pfs, PfsConfig, PfsStats};

use std::sync::Arc;

use elan4::HostBuf;
use openmpi_core::{Communicator, Mpi};
use qsim::Wait;

/// An open file handle bound to a communicator (MPI_File semantics: opens
/// and collective operations involve the whole group).
pub struct File {
    pfs: Arc<Pfs>,
    comm: Communicator,
    name: String,
}

impl File {
    /// Collectively open (creating if absent) `name` on `pfs`.
    pub fn open(mpi: &Mpi, pfs: &Arc<Pfs>, comm: &Communicator, name: &str) -> File {
        // Rank 0 creates; everyone synchronizes before first use.
        if comm.rank() == 0 && !pfs.exists(name) {
            pfs.create(name);
        }
        mpi.barrier(comm);
        File {
            pfs: pfs.clone(),
            comm: comm.clone(),
            name: name.to_string(),
        }
    }

    /// The file's current length.
    pub fn len(&self) -> usize {
        self.pfs.len(&self.name).unwrap_or(0)
    }

    /// True when the file holds no bytes yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Independent write of `len` bytes from `buf` at absolute `offset`.
    /// Blocks (in virtual time) until the storage has the data.
    pub fn write_at(&self, mpi: &Mpi, offset: usize, buf: &HostBuf, len: usize) {
        let data = mpi.read(buf, 0, len);
        let done = self.pfs.write(mpi.now(), &self.name, offset, &data);
        block_until(mpi, done);
    }

    /// Independent read of up to `len` bytes at `offset` into `buf`;
    /// returns the bytes actually read.
    pub fn read_at(&self, mpi: &Mpi, offset: usize, buf: &HostBuf, len: usize) -> usize {
        let (done, data) = self.pfs.read(mpi.now(), &self.name, offset, len);
        mpi.write(buf, 0, &data);
        block_until(mpi, done);
        data.len()
    }

    /// Collective write: rank `r` deposits its `len`-byte block at
    /// `base + r * len`. All ranks' requests are issued together so the
    /// stripes fan out across the I/O nodes; completes when every rank's
    /// data is stored (closing barrier).
    pub fn write_all(&self, mpi: &Mpi, base: usize, buf: &HostBuf, len: usize) {
        let offset = base + self.comm.rank() * len;
        self.write_at(mpi, offset, buf, len);
        mpi.barrier(&self.comm);
    }

    /// Collective read of rank-`r`'s block written by [`File::write_all`].
    pub fn read_all(&self, mpi: &Mpi, base: usize, buf: &HostBuf, len: usize) -> usize {
        let offset = base + self.comm.rank() * len;
        let n = self.read_at(mpi, offset, buf, len);
        mpi.barrier(&self.comm);
        n
    }

    /// Collectively close the file (a synchronization point; the simulated
    /// storage is always durable).
    pub fn close(self, mpi: &Mpi) {
        mpi.barrier(&self.comm);
    }
}

/// Park the calling rank until virtual time `t`.
fn block_until(mpi: &Mpi, t: qsim::Time) {
    let now = mpi.now();
    if t > now {
        let sig = mpi.proc().signal();
        let sig2 = sig.clone();
        mpi.proc().sim().call_at(t, move |s| sig2.notify(s));
        match mpi.proc().wait(&sig) {
            Wait::Signaled => {}
            Wait::Shutdown => panic!("shutdown during I/O"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openmpi_core::{Placement, StackConfig, Universe};
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn collective_write_then_read_back() {
        let uni = Universe::paper_testbed(StackConfig::best());
        let pfs = Pfs::new(PfsConfig::default());
        let p2 = pfs.clone();
        uni.run_world(4, Placement::RoundRobin, move |mpi| {
            let w = mpi.world();
            let me = mpi.rank();
            let block = 32 << 10;
            let f = File::open(&mpi, &p2, &w, "checkpoint.dat");
            let buf = mpi.alloc(block);
            mpi.write(&buf, 0, &vec![me as u8 + 1; block]);
            f.write_all(&mpi, 0, &buf, block);
            assert_eq!(f.len(), 4 * block);

            // Each rank reads its right neighbour's block back.
            let nxt = (me + 1) % 4;
            let rbuf = mpi.alloc(block);
            let got = f.read_at(&mpi, nxt * block, &rbuf, block);
            assert_eq!(got, block);
            assert_eq!(mpi.read(&rbuf, 0, block), vec![nxt as u8 + 1; block]);
            f.close(&mpi);
        });
        assert_eq!(pfs.stats().bytes as usize, 2 * 4 * (32 << 10));
    }

    #[test]
    fn collective_io_scales_with_io_nodes() {
        fn run(io_nodes: usize) -> u64 {
            let uni = Universe::paper_testbed(StackConfig::best());
            let pfs = Pfs::new(PfsConfig {
                io_nodes,
                ..Default::default()
            });
            let t = std::sync::Arc::new(AtomicU64::new(0));
            let t2 = t.clone();
            uni.run_world(4, Placement::RoundRobin, move |mpi| {
                let w = mpi.world();
                let f = File::open(&mpi, &pfs, &w, "big.dat");
                let block = 256 << 10;
                let buf = mpi.alloc(block);
                mpi.barrier(&w);
                let t0 = mpi.now();
                f.write_all(&mpi, 0, &buf, block);
                if mpi.rank() == 0 {
                    t2.store((mpi.now() - t0).as_ns(), Ordering::SeqCst);
                }
            });
            t.load(Ordering::SeqCst)
        }
        let wide = run(8);
        let narrow = run(1);
        assert!(
            wide * 3 < narrow,
            "collective I/O should scale with I/O nodes: {wide} vs {narrow}"
        );
    }

    #[test]
    fn independent_writes_do_not_corrupt_neighbours() {
        let uni = Universe::paper_testbed(StackConfig::best());
        let pfs = Pfs::new(PfsConfig {
            stripe: 128, // small stripes: adjacent writes share I/O nodes
            ..Default::default()
        });
        let p2 = pfs.clone();
        uni.run_world(8, Placement::RoundRobin, move |mpi| {
            let w = mpi.world();
            let me = mpi.rank();
            let f = File::open(&mpi, &p2, &w, "interleaved");
            let buf = mpi.alloc(100);
            mpi.write(&buf, 0, &[me as u8 + 10; 100]);
            // Unaligned, interleaved, concurrent.
            f.write_at(&mpi, me * 100, &buf, 100);
            mpi.barrier(&w);
            let rbuf = mpi.alloc(100);
            f.read_at(&mpi, me * 100, &rbuf, 100);
            assert_eq!(mpi.read(&rbuf, 0, 100), vec![me as u8 + 10; 100]);
        });
    }
}
