//! The storage substrate: a striped parallel file system in virtual time.
//!
//! Files are striped round-robin over a set of I/O nodes; each I/O node is
//! a queueing resource (one disk, one service queue), so concurrent
//! accesses to different stripes proceed in parallel while accesses to the
//! same I/O node serialize — the behaviour that makes collective I/O
//! worthwhile.

use std::collections::HashMap;
use std::sync::Arc;

use qsim::Mutex;
use qsim::{Dur, Time};

/// File-system shape and timing.
#[derive(Clone, Debug)]
pub struct PfsConfig {
    /// Number of I/O nodes the stripes rotate over.
    pub io_nodes: usize,
    /// Stripe unit in bytes.
    pub stripe: usize,
    /// Per-I/O-node disk bandwidth, bytes per microsecond (100 = 100 MB/s,
    /// a period-appropriate SCSI array).
    pub disk_bytes_per_us: u64,
    /// Per-request service latency (seek + controller + network to the
    /// I/O node).
    pub request_latency: Dur,
}

impl Default for PfsConfig {
    fn default() -> Self {
        PfsConfig {
            io_nodes: 4,
            stripe: 64 << 10,
            disk_bytes_per_us: 100,
            request_latency: Dur::from_us(150),
        }
    }
}

struct FileState {
    data: Vec<u8>,
}

struct PfsInner {
    files: HashMap<String, FileState>,
    /// Disk availability per I/O node.
    disk_free: Vec<Time>,
    reads: u64,
    writes: u64,
    bytes: u64,
}

/// The shared file system.
pub struct Pfs {
    cfg: PfsConfig,
    inner: Mutex<PfsInner>,
}

/// Counters for tests.
#[derive(Clone, Debug, Default)]
pub struct PfsStats {
    /// Read requests served.
    pub reads: u64,
    /// Write requests served.
    pub writes: u64,
    /// Total bytes moved.
    pub bytes: u64,
}

impl Pfs {
    /// An empty file system.
    pub fn new(cfg: PfsConfig) -> Arc<Pfs> {
        assert!(cfg.io_nodes > 0 && cfg.stripe > 0);
        let disks = cfg.io_nodes;
        Arc::new(Pfs {
            cfg,
            inner: Mutex::new(PfsInner {
                files: HashMap::new(),
                disk_free: vec![Time::ZERO; disks],
                reads: 0,
                writes: 0,
                bytes: 0,
            }),
        })
    }

    /// The configured shape.
    pub fn cfg(&self) -> &PfsConfig {
        &self.cfg
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PfsStats {
        let inner = self.inner.lock();
        PfsStats {
            reads: inner.reads,
            writes: inner.writes,
            bytes: inner.bytes,
        }
    }

    /// Create (or truncate) a file.
    pub fn create(&self, name: &str) {
        self.inner
            .lock()
            .files
            .insert(name.to_string(), FileState { data: Vec::new() });
    }

    /// Current length of a file.
    pub fn len(&self, name: &str) -> Option<usize> {
        self.inner.lock().files.get(name).map(|f| f.data.len())
    }

    /// Whether `name` exists.
    pub fn exists(&self, name: &str) -> bool {
        self.inner.lock().files.contains_key(name)
    }

    /// Which I/O node serves byte `offset`.
    fn node_of(&self, offset: usize) -> usize {
        (offset / self.cfg.stripe) % self.cfg.io_nodes
    }

    /// Schedule one contiguous access; returns its completion time.
    /// `offset..offset+len` must lie within a single stripe.
    fn access_stripe(
        &self,
        now: Time,
        name: &str,
        offset: usize,
        len: usize,
        write: Option<&[u8]>,
    ) -> Time {
        let node = self.node_of(offset);
        let mut inner = self.inner.lock();
        let f = inner
            .files
            .get_mut(name)
            .unwrap_or_else(|| panic!("no such file: {name}"));
        if let Some(bytes) = write {
            if f.data.len() < offset + len {
                f.data.resize(offset + len, 0);
            }
            f.data[offset..offset + len].copy_from_slice(bytes);
            inner.writes += 1;
        } else {
            inner.reads += 1;
        }
        inner.bytes += len as u64;
        let start = now.max(inner.disk_free[node]);
        let done =
            start + self.cfg.request_latency + Dur::for_bytes(len, self.cfg.disk_bytes_per_us);
        inner.disk_free[node] = done;
        done
    }

    /// Schedule a write of `data` at `offset`; returns completion time.
    /// The access is split at stripe boundaries so independent I/O nodes
    /// work in parallel.
    pub fn write(&self, now: Time, name: &str, offset: usize, data: &[u8]) -> Time {
        let mut done = now;
        let mut off = offset;
        let mut rest = data;
        while !rest.is_empty() {
            let in_stripe = self.cfg.stripe - (off % self.cfg.stripe);
            let take = rest.len().min(in_stripe);
            let t = self.access_stripe(now, name, off, take, Some(&rest[..take]));
            done = done.max(t);
            off += take;
            rest = &rest[take..];
        }
        done
    }

    /// Schedule a read of `len` bytes at `offset`; returns `(completion
    /// time, bytes)`. Short reads past EOF return what exists.
    pub fn read(&self, now: Time, name: &str, offset: usize, len: usize) -> (Time, Vec<u8>) {
        let file_len = self
            .len(name)
            .unwrap_or_else(|| panic!("no such file: {name}"));
        let end = (offset + len).min(file_len);
        let mut out = Vec::with_capacity(end.saturating_sub(offset));
        let mut done = now;
        let mut off = offset;
        while off < end {
            let in_stripe = self.cfg.stripe - (off % self.cfg.stripe);
            let take = (end - off).min(in_stripe);
            let t = self.access_stripe(now, name, off, take, None);
            {
                let inner = self.inner.lock();
                let f = &inner.files[name];
                out.extend_from_slice(&f.data[off..off + take]);
            }
            done = done.max(t);
            off += take;
        }
        (done, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_roundtrip() {
        let pfs = Pfs::new(PfsConfig::default());
        pfs.create("f");
        let data: Vec<u8> = (0..200_000).map(|i| (i % 251) as u8).collect();
        pfs.write(Time::ZERO, "f", 1000, &data);
        let (_, got) = pfs.read(Time::ZERO, "f", 1000, data.len());
        assert_eq!(got, data);
        assert_eq!(pfs.len("f"), Some(1000 + data.len()));
    }

    #[test]
    fn striping_parallelizes_across_io_nodes() {
        // One big write spanning 4 stripes on 4 nodes completes in roughly
        // the time of one stripe; on 1 node it serializes.
        let len = 256 << 10;
        let t4 = {
            let pfs = Pfs::new(PfsConfig::default());
            pfs.create("f");
            pfs.write(Time::ZERO, "f", 0, &vec![7u8; len]).as_ns()
        };
        let t1 = {
            let pfs = Pfs::new(PfsConfig {
                io_nodes: 1,
                ..Default::default()
            });
            pfs.create("f");
            pfs.write(Time::ZERO, "f", 0, &vec![7u8; len]).as_ns()
        };
        assert!(t4 * 3 < t1, "striping speedup missing: {t4} vs {t1}");
    }

    #[test]
    fn same_node_accesses_serialize() {
        let pfs = Pfs::new(PfsConfig::default());
        pfs.create("f");
        let stripe = pfs.cfg().stripe;
        // Two writes to the same stripe (same I/O node) serialize.
        let a = pfs.write(Time::ZERO, "f", 0, &vec![1u8; stripe]);
        let b = pfs.write(Time::ZERO, "f", 0, &vec![2u8; stripe]);
        assert!(b.as_ns() >= 2 * a.as_ns() - 1);
    }

    #[test]
    fn read_past_eof_is_short() {
        let pfs = Pfs::new(PfsConfig::default());
        pfs.create("f");
        pfs.write(Time::ZERO, "f", 0, &[1, 2, 3]);
        let (_, got) = pfs.read(Time::ZERO, "f", 1, 100);
        assert_eq!(got, vec![2, 3]);
    }
}

#[cfg(all(test, feature = "proptest"))]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Arbitrary interleavings of writes and reads behave like a plain
        /// in-memory file.
        #[test]
        fn pfs_matches_reference_file(
            ops in proptest::collection::vec(
                (0usize..300_000, 1usize..80_000, any::<u8>(), any::<bool>()),
                1..25
            ),
        ) {
            let pfs = Pfs::new(PfsConfig::default());
            pfs.create("f");
            let mut reference: Vec<u8> = Vec::new();
            for (off, len, fill, is_write) in ops {
                if is_write {
                    let data = vec![fill; len];
                    pfs.write(Time::ZERO, "f", off, &data);
                    if reference.len() < off + len {
                        reference.resize(off + len, 0);
                    }
                    reference[off..off + len].copy_from_slice(&data);
                } else {
                    let (_, got) = pfs.read(Time::ZERO, "f", off, len);
                    let end = (off + len).min(reference.len());
                    let expect = if off < reference.len() {
                        &reference[off..end]
                    } else {
                        &[][..]
                    };
                    prop_assert_eq!(&got[..], expect);
                }
            }
            prop_assert_eq!(pfs.len("f"), Some(reference.len()));
        }
    }
}
