//! A small deterministic PRNG (PCG-XSH-RR 32) for randomized tests and
//! synthetic workloads.
//!
//! The simulation itself is deterministic and must stay that way, so
//! anything random is seeded explicitly and lives in-tree: no external
//! crates, no global state, identical streams on every platform.

/// PCG-XSH-RR with 64-bit state and 32-bit output (O'Neill 2014).
#[derive(Clone, Debug)]
pub struct Pcg32 {
    state: u64,
    inc: u64,
}

const PCG_MULT: u64 = 6364136223846793005;

impl Pcg32 {
    /// A generator seeded from `seed` on the default stream.
    pub fn new(seed: u64) -> Pcg32 {
        let mut rng = Pcg32 {
            state: 0,
            inc: (0xda3e_39cb_94b9_5bdb << 1) | 1,
        };
        rng.state = rng.state.wrapping_mul(PCG_MULT).wrapping_add(rng.inc);
        rng.state = rng.state.wrapping_add(seed);
        rng.state = rng.state.wrapping_mul(PCG_MULT).wrapping_add(rng.inc);
        rng
    }

    /// Next 32 uniformly random bits.
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        ((self.next_u32() as u64) << 32) | self.next_u32() as u64
    }

    /// Next random byte.
    pub fn next_u8(&mut self) -> u8 {
        (self.next_u32() >> 24) as u8
    }

    /// Uniform value in `0..n` (`n` must be nonzero). Uses rejection
    /// sampling, so the distribution is exactly uniform.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty range");
        let zone = u64::MAX - (u64::MAX % n);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % n;
            }
        }
    }

    /// Uniform `usize` in `0..n`.
    pub fn index(&mut self, n: usize) -> usize {
        self.below(n as u64) as usize
    }

    /// Uniform `usize` in `lo..hi`.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range");
        lo + self.index(hi - lo)
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// True with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// A vector of `len` random bytes.
    pub fn bytes(&mut self, len: usize) -> Vec<u8> {
        (0..len).map(|_| self.next_u8()).collect()
    }

    /// Fisher-Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            xs.swap(i, self.index(i + 1));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Pcg32::new(42);
        let mut b = Pcg32::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Pcg32::new(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut r = Pcg32::new(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.below(10) as usize;
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|s| *s), "all residues hit");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Pcg32::new(1);
        for _ in 0..1000 {
            let v = r.f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Pcg32::new(9);
        let mut xs: Vec<u32> = (0..20).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<u32>>());
    }
}
