//! Virtual-time synchronization helpers built on [`Signal`]: a single-owner
//! mailbox (used for out-of-band control messages) and a rendezvous cell —
//! plus the [`Mutex`] the whole stack uses for host-side shared state.

use std::collections::VecDeque;
use std::sync::Arc;

use crate::handle::SimHandle;
use crate::proc::Proc;
use crate::signal::{Signal, Wait};
use crate::time::Dur;

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A `parking_lot`-style mutex over `std::sync::Mutex`: `lock()` returns the
/// guard directly, and poisoning is ignored rather than propagated — a
/// panicking simulated process unwinds through kernel teardown and must not
/// wedge every other rank's endpoint state behind a `PoisonError`.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// A new mutex holding `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the calling OS thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.inner.try_lock() {
            Ok(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            Err(_) => f.write_str("Mutex(<locked>)"),
        }
    }
}

struct MailboxInner<T> {
    queue: Mutex<VecDeque<T>>,
    signal: Signal,
}

/// Receiving side of a virtual-time mailbox; owned by one process.
pub struct Mailbox<T> {
    inner: Arc<MailboxInner<T>>,
}

/// Sending side; freely cloneable across processes and device callbacks.
pub struct MailboxTx<T> {
    inner: Arc<MailboxInner<T>>,
}

impl<T> Clone for MailboxTx<T> {
    fn clone(&self) -> Self {
        MailboxTx {
            inner: self.inner.clone(),
        }
    }
}

impl<T: Send + 'static> Mailbox<T> {
    /// Create a mailbox owned by `proc`.
    pub fn new(proc: &Proc) -> (MailboxTx<T>, Mailbox<T>) {
        let inner = Arc::new(MailboxInner {
            queue: Mutex::new(VecDeque::new()),
            signal: proc.signal(),
        });
        (
            MailboxTx {
                inner: inner.clone(),
            },
            Mailbox { inner },
        )
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<T> {
        self.inner.queue.lock().pop_front()
    }

    /// Block (in virtual time) until a message is available.
    pub fn recv(&self, proc: &Proc) -> Result<T, Wait> {
        loop {
            if let Some(v) = self.try_recv() {
                return Ok(v);
            }
            match proc.wait(&self.inner.signal) {
                Wait::Signaled => continue,
                Wait::Shutdown => return Err(Wait::Shutdown),
            }
        }
    }

    /// Messages currently queued.
    pub fn len(&self) -> usize {
        self.inner.queue.lock().len()
    }

    /// True when no message is queued.
    pub fn is_empty(&self) -> bool {
        self.inner.queue.lock().is_empty()
    }
}

impl<T: Send + 'static> MailboxTx<T> {
    /// Deliver immediately (at the current virtual instant).
    pub fn send(&self, sim: &SimHandle, value: T) {
        self.inner.queue.lock().push_back(value);
        self.inner.signal.notify(sim);
    }

    /// Deliver after `delay` of virtual time (models a control-network hop).
    pub fn send_after(&self, sim: &SimHandle, delay: Dur, value: T) {
        let inner = self.inner.clone();
        sim.call_after(delay, move |sim| {
            inner.queue.lock().push_back(value);
            inner.signal.notify(sim);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::Simulation;
    use crate::time::Time;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn mailbox_delivers_in_order_and_in_time() {
        let sim = Simulation::new();
        let got = Arc::new(Mutex::new(Vec::new()));
        let got2 = got.clone();
        #[allow(clippy::type_complexity)]
        let (tx_slot, rx_slot): (
            Arc<Mutex<Option<MailboxTx<u32>>>>,
            Arc<Mutex<Option<MailboxTx<u32>>>>,
        ) = {
            let s = Arc::new(Mutex::new(None));
            (s.clone(), s)
        };

        sim.spawn("receiver", move |p| {
            let (tx, rx) = Mailbox::<u32>::new(&p);
            *rx_slot.lock() = Some(tx);
            for _ in 0..3 {
                let v = rx.recv(&p).unwrap();
                got2.lock().push((v, p.now()));
            }
        });
        let tx_slot2 = tx_slot.clone();
        sim.spawn("sender", move |p| {
            // Let the receiver run first and publish its tx.
            p.advance(Dur::from_ns(10));
            let tx = tx_slot2.lock().clone().unwrap();
            tx.send(&p.sim(), 1);
            tx.send_after(&p.sim(), Dur::from_us(5), 3);
            tx.send_after(&p.sim(), Dur::from_us(2), 2);
        });
        sim.run().unwrap();
        let got = got.lock();
        assert_eq!(got[0].0, 1);
        assert_eq!(got[1].0, 2);
        assert_eq!(got[2].0, 3);
        assert_eq!(got[1].1, Time::from_ns(2_010));
        assert_eq!(got[2].1, Time::from_ns(5_010));
    }

    #[test]
    fn daemon_mailbox_sees_shutdown() {
        let sim = Simulation::new();
        let woke = Arc::new(AtomicU64::new(0));
        let woke2 = woke.clone();
        sim.spawn_daemon("progress", move |p| {
            let (_tx, rx) = Mailbox::<u32>::new(&p);
            match rx.recv(&p) {
                Err(Wait::Shutdown) => {
                    woke2.store(1, Ordering::SeqCst);
                }
                other => panic!("unexpected: {other:?}"),
            }
        });
        sim.spawn("main", |p| {
            p.advance(Dur::from_us(1));
        });
        sim.run().unwrap();
        assert_eq!(woke.load(Ordering::SeqCst), 1);
    }
}
