//! Edge-triggered wakeup signals.
//!
//! A [`Signal`] is owned by exactly one simulated process (the one that will
//! wait on it) but may be notified from anywhere: another process, a device
//! callback, an interrupt model. A notification that arrives while the owner
//! is running is latched and consumed by the owner's next wait, so wakeups
//! are never lost.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::handle::SimHandle;
use crate::kernel::{Event, KernelState, ParkKind, ProcId};

pub(crate) struct SignalInner {
    pub id: u64,
    pub owner: ProcId,
    /// Latched pending flag. Only mutated while the kernel lock is held, so
    /// `Relaxed` ordering suffices; the atomic is for `Send`/`Sync` only.
    pub pending: AtomicBool,
}

/// A one-owner, many-notifier wakeup flag in virtual time.
#[derive(Clone)]
pub struct Signal {
    pub(crate) inner: Arc<SignalInner>,
}

impl Signal {
    /// Latch the signal and wake the owner if it is parked on this signal.
    ///
    /// May be called from device callbacks or from other processes.
    pub fn notify(&self, sim: &SimHandle) {
        let mut st = sim.shared.state.lock();
        self.notify_locked(&mut st);
    }

    pub(crate) fn notify_locked(&self, st: &mut KernelState) {
        self.inner.pending.store(true, Ordering::Relaxed);
        let slot = st.procs.get_mut(self.inner.owner.index());
        if !slot.finished && slot.park == ParkKind::Signal(self.inner.id) {
            slot.park = ParkKind::Timer; // wake is now queued
            let at = st.now;
            st.push_event(at, Event::Wake(self.inner.owner));
        }
    }

    /// Non-destructive check of the pending flag (e.g. polling loops that do
    /// their own cost accounting).
    pub fn is_pending(&self) -> bool {
        self.inner.pending.load(Ordering::Relaxed)
    }

    /// Owner of this signal.
    pub fn owner(&self) -> ProcId {
        self.inner.owner
    }
}

impl std::fmt::Debug for Signal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Signal#{}(owner={}, pending={})",
            self.inner.id,
            self.inner.owner,
            self.is_pending()
        )
    }
}

/// Result of waiting on a [`Signal`].
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Wait {
    /// The signal fired.
    Signaled,
    /// The simulation is shutting down (all non-daemon processes finished).
    Shutdown,
}

impl Wait {
    /// Panic if the wait ended because of shutdown. For use in non-daemon
    /// process code where shutdown mid-wait indicates a bug.
    pub fn expect_signaled(self) {
        assert_eq!(
            self,
            Wait::Signaled,
            "simulation shut down while a process was blocked"
        );
    }
}

/// Result of waiting on a [`Signal`] with a timeout
/// ([`crate::Proc::wait_timeout`]).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum TimedWait {
    /// The signal fired before the timeout.
    Signaled,
    /// The timeout elapsed without a notification.
    TimedOut,
    /// The simulation is shutting down (all non-daemon processes finished).
    Shutdown,
}
