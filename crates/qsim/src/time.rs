//! Virtual time. The simulation clock counts nanoseconds from the start of
//! the run; durations are nanosecond counts. Both are plain `u64` newtypes so
//! that identical runs produce bit-identical timings.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An instant in virtual time (nanoseconds since simulation start).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(u64);

/// A span of virtual time (nanoseconds).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Dur(u64);

impl Time {
    /// The start of the simulation.
    pub const ZERO: Time = Time(0);

    /// An instant `ns` nanoseconds after simulation start.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        Time(ns)
    }

    /// Nanoseconds since simulation start.
    #[inline]
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// Time as fractional microseconds (for reporting; never used to order events).
    #[inline]
    pub fn as_us(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// `self - rhs`, clamped at zero.
    #[inline]
    pub fn saturating_sub(self, rhs: Time) -> Dur {
        Dur(self.0.saturating_sub(rhs.0))
    }
}

impl Dur {
    /// The empty duration.
    pub const ZERO: Dur = Dur(0);

    /// A duration of `ns` nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        Dur(ns)
    }

    /// Whole microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        Dur(us * 1_000)
    }

    /// Fractional microseconds, rounded to the nearest nanosecond.
    #[inline]
    pub fn from_us_f64(us: f64) -> Self {
        debug_assert!(us >= 0.0);
        Dur((us * 1_000.0).round() as u64)
    }

    /// The duration in nanoseconds.
    #[inline]
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// The duration as fractional microseconds.
    #[inline]
    pub fn as_us(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Duration to move `bytes` at `bytes_per_us` (bytes per microsecond,
    /// i.e. MB/s). Rounds up so a transfer never takes zero time.
    #[inline]
    pub fn for_bytes(bytes: usize, bytes_per_us: u64) -> Self {
        if bytes == 0 || bytes_per_us == 0 {
            return Dur::ZERO;
        }
        let ns = (bytes as u128 * 1_000).div_ceil(bytes_per_us as u128);
        Dur(ns as u64)
    }

    /// `self - rhs`, or `None` on underflow.
    #[inline]
    pub fn checked_sub(self, rhs: Dur) -> Option<Dur> {
        self.0.checked_sub(rhs.0).map(Dur)
    }

    /// `self - rhs`, clamped at zero.
    #[inline]
    pub fn saturating_sub(self, rhs: Dur) -> Dur {
        Dur(self.0.saturating_sub(rhs.0))
    }

    /// The longer of two durations.
    #[inline]
    pub fn max(self, rhs: Dur) -> Dur {
        Dur(self.0.max(rhs.0))
    }
}

impl Add<Dur> for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Dur) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign<Dur> for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Dur) {
        self.0 += rhs.0;
    }
}

impl Sub<Time> for Time {
    type Output = Dur;
    #[inline]
    fn sub(self, rhs: Time) -> Dur {
        Dur(self.0.checked_sub(rhs.0).expect("time went backwards"))
    }
}

impl Add<Dur> for Dur {
    type Output = Dur;
    #[inline]
    fn add(self, rhs: Dur) -> Dur {
        Dur(self.0 + rhs.0)
    }
}

impl AddAssign<Dur> for Dur {
    #[inline]
    fn add_assign(&mut self, rhs: Dur) {
        self.0 += rhs.0;
    }
}

impl Sub<Dur> for Dur {
    type Output = Dur;
    #[inline]
    fn sub(self, rhs: Dur) -> Dur {
        Dur(self.0.checked_sub(rhs.0).expect("negative duration"))
    }
}

impl Mul<u64> for Dur {
    type Output = Dur;
    #[inline]
    fn mul(self, rhs: u64) -> Dur {
        Dur(self.0 * rhs)
    }
}

impl Div<u64> for Dur {
    type Output = Dur;
    #[inline]
    fn div(self, rhs: u64) -> Dur {
        Dur(self.0 / rhs)
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}us", self.as_us())
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_us())
    }
}

impl fmt::Debug for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_us())
    }
}

impl fmt::Display for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_us())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic() {
        let t = Time::from_ns(1_000);
        let t2 = t + Dur::from_ns(500);
        assert_eq!(t2.as_ns(), 1_500);
        assert_eq!((t2 - t).as_ns(), 500);
    }

    #[test]
    fn us_conversions() {
        assert_eq!(Dur::from_us(3).as_ns(), 3_000);
        assert_eq!(Dur::from_us_f64(0.25).as_ns(), 250);
        assert!((Time::from_ns(4_870).as_us() - 4.87).abs() < 1e-9);
    }

    #[test]
    fn bandwidth_duration_rounds_up() {
        // 1000 bytes at 900 MB/s (== 900 bytes/us) -> ceil(1000*1000/900) ns
        assert_eq!(Dur::for_bytes(1000, 900).as_ns(), 1112);
        assert_eq!(Dur::for_bytes(0, 900), Dur::ZERO);
        // one byte never takes zero time
        assert!(Dur::for_bytes(1, 1_000_000).as_ns() >= 1);
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn negative_interval_panics() {
        let _ = Time::from_ns(1) - Time::from_ns(2);
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(Time::from_ns(1).saturating_sub(Time::from_ns(5)), Dur::ZERO);
        assert_eq!(
            Dur::from_ns(7).saturating_sub(Dur::from_ns(3)),
            Dur::from_ns(4)
        );
    }
}
