//! Event queues for the kernel.
//!
//! Two implementations pop the exact same `(time, seq)` total order:
//!
//! * [`QueueKind::Calendar`] — the production queue: a 256-slot timing
//!   wheel of 1.024 µs buckets sliding with the dispatch cursor, with a
//!   binary heap (min-ordered by `(time, seq)`) holding far-future
//!   overflow. Near-future scheduling — the overwhelmingly common case for
//!   NIC state transitions and process wakes — is an O(1) bucket push;
//!   draining a bucket sorts it once. Cancellation (watchdog timers that
//!   raced their signal) is a tombstone: the entry is skipped when its
//!   bucket drains, and the live count is adjusted immediately.
//! * [`QueueKind::BTree`] — the original `BTreeMap<(Time, u64), Event>`
//!   queue, kept as the determinism reference: the sim-bench cross-check
//!   and the qsim test suite run identical programs on both queues and
//!   require bit-identical schedule hashes.
//!
//! Keys are unique (`seq` increments on every push), pushes never predate
//! the last popped key (the kernel clamps event times to `now`), and pops
//! are strictly increasing in `(time, seq)` — which is what lets the
//! calendar queue answer [`EventQueue::contains`] with a single comparison
//! against the last popped key.

use std::collections::{BTreeMap, BinaryHeap, HashSet};
use std::sync::atomic::{AtomicU8, Ordering};

use crate::kernel::Event;
use crate::time::Time;

/// Which event-queue implementation a [`crate::Simulation`] uses.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum QueueKind {
    /// Timing-wheel calendar queue with a binary-heap overflow (default).
    Calendar,
    /// The reference `BTreeMap` queue (determinism cross-checks).
    BTree,
}

static DEFAULT_KIND: AtomicU8 = AtomicU8::new(0);

/// Set the queue implementation used by subsequently created
/// [`crate::Simulation`]s (process-global; used by benches to cross-check
/// the calendar queue against the reference queue on identical workloads).
pub fn set_default_queue_kind(kind: QueueKind) {
    let v = match kind {
        QueueKind::Calendar => 0,
        QueueKind::BTree => 1,
    };
    DEFAULT_KIND.store(v, Ordering::SeqCst);
}

/// The current process-global default queue kind.
pub fn default_queue_kind() -> QueueKind {
    match DEFAULT_KIND.load(Ordering::SeqCst) {
        1 => QueueKind::BTree,
        _ => QueueKind::Calendar,
    }
}

/// Bucket width: 2^10 ns = 1.024 µs, on the order of one NIC/link hop.
const BUCKET_SHIFT: u32 = 10;
/// Wheel span: 256 buckets ≈ 262 µs of lookahead before overflow.
const NBUCKETS: usize = 256;
const BITMAP_WORDS: usize = NBUCKETS / 64;

struct Entry {
    at: Time,
    seq: u64,
    ev: Event,
}

impl Entry {
    #[inline]
    fn key(&self) -> (Time, u64) {
        (self.at, self.seq)
    }
}

/// Overflow-heap wrapper: max-heap on the *reversed* key = min-heap on
/// `(time, seq)`. Ordering ignores the payload; keys are unique.
struct Overflow(Entry);

impl PartialEq for Overflow {
    fn eq(&self, other: &Self) -> bool {
        self.0.key() == other.0.key()
    }
}
impl Eq for Overflow {}
impl PartialOrd for Overflow {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Overflow {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.0.key().cmp(&self.0.key())
    }
}

pub(crate) struct CalendarQueue {
    /// Entries of the bucket the cursor is on, sorted *descending* by key
    /// so the next event pops from the back in O(1).
    stage: Vec<Entry>,
    /// Absolute bucket index (`time >> BUCKET_SHIFT`) the stage was built
    /// from. Slots hold only buckets in `(cur_bucket, cur_bucket+NBUCKETS)`.
    cur_bucket: u64,
    slots: Vec<Vec<Entry>>,
    /// One bit per slot with entries, for O(1) next-bucket scans.
    occupied: [u64; BITMAP_WORDS],
    overflow: BinaryHeap<Overflow>,
    /// Seqs cancelled while still queued; entries are dropped when reached.
    cancelled: HashSet<u64>,
    /// Queued, non-cancelled entries.
    live: usize,
    /// Key of the last event handed out by `pop`.
    last_popped: (Time, u64),
}

impl CalendarQueue {
    fn new() -> CalendarQueue {
        CalendarQueue {
            stage: Vec::new(),
            cur_bucket: 0,
            slots: (0..NBUCKETS).map(|_| Vec::new()).collect(),
            occupied: [0; BITMAP_WORDS],
            overflow: BinaryHeap::new(),
            cancelled: HashSet::new(),
            live: 0,
            last_popped: (Time::ZERO, 0),
        }
    }

    #[inline]
    fn set_bit(&mut self, slot: usize) {
        self.occupied[slot / 64] |= 1u64 << (slot % 64);
    }

    #[inline]
    fn clear_bit(&mut self, slot: usize) {
        self.occupied[slot / 64] &= !(1u64 << (slot % 64));
    }

    fn insert(&mut self, at: Time, seq: u64, ev: Event) {
        let bucket = at.as_ns() >> BUCKET_SHIFT;
        let entry = Entry { at, seq, ev };
        if bucket <= self.cur_bucket {
            // At or before the staged bucket (time is still >= the last
            // popped key): merge into the stage at its sorted position.
            let key = entry.key();
            let idx = self.stage.partition_point(|e| e.key() > key);
            self.stage.insert(idx, entry);
        } else if bucket < self.cur_bucket + NBUCKETS as u64 {
            let slot = (bucket % NBUCKETS as u64) as usize;
            self.slots[slot].push(entry);
            self.set_bit(slot);
        } else {
            self.overflow.push(Overflow(entry));
        }
        self.live += 1;
    }

    /// Drop cancelled entries from the top of the overflow heap.
    fn trim_overflow(&mut self) {
        while let Some(top) = self.overflow.peek() {
            if self.cancelled.remove(&top.0.seq) {
                self.overflow.pop();
            } else {
                break;
            }
        }
    }

    /// Make the back of `stage` the globally next live entry. Returns false
    /// when no live entry remains anywhere.
    fn ensure_stage(&mut self) -> bool {
        loop {
            // Skip tombstones at the stage front.
            while let Some(e) = self.stage.last() {
                if self.cancelled.remove(&e.seq) {
                    self.stage.pop();
                } else {
                    return true;
                }
            }
            if self.live == 0 {
                return false;
            }
            // Advance the cursor to the next populated bucket: the nearer of
            // the next occupied wheel slot (a circular scan from the cursor
            // is absolute order, because the window is exactly one lap) and
            // the overflow head's bucket.
            let next_wheel = self.next_occupied_bucket();
            self.trim_overflow();
            let next_over = self.overflow.peek().map(|o| o.0.at.as_ns() >> BUCKET_SHIFT);
            let target = match (next_wheel, next_over) {
                (Some(w), Some(o)) => w.min(o),
                (Some(w), None) => w,
                (None, Some(o)) => o,
                (None, None) => return false, // only tombstones remained
            };
            self.cur_bucket = target;
            let slot = (target % NBUCKETS as u64) as usize;
            if next_wheel == Some(target) {
                std::mem::swap(&mut self.stage, &mut self.slots[slot]);
                self.clear_bit(slot);
            }
            // Pull overflow entries that landed in this same bucket.
            loop {
                self.trim_overflow();
                match self.overflow.peek() {
                    Some(top) if top.0.at.as_ns() >> BUCKET_SHIFT == target => {
                        let Overflow(e) = self.overflow.pop().unwrap();
                        self.stage.push(e);
                    }
                    _ => break,
                }
            }
            // Descending sort: next event at the back.
            self.stage
                .sort_unstable_by_key(|e| std::cmp::Reverse(e.key()));
        }
    }

    /// Absolute index of the first occupied wheel bucket after the cursor.
    fn next_occupied_bucket(&self) -> Option<u64> {
        let start = ((self.cur_bucket + 1) % NBUCKETS as u64) as usize;
        let base = self.cur_bucket + 1;
        for i in 0..NBUCKETS {
            let slot = (start + i) % NBUCKETS;
            if self.occupied[slot / 64] & (1u64 << (slot % 64)) != 0 {
                return Some(base + i as u64);
            }
        }
        None
    }

    fn pop(&mut self) -> Option<(Time, u64, Event)> {
        if !self.ensure_stage() {
            return None;
        }
        let e = self.stage.pop().unwrap();
        self.live -= 1;
        self.last_popped = e.key();
        Some((e.at, e.seq, e.ev))
    }

    fn next_is_call_at(&mut self, t: Time) -> bool {
        if !self.ensure_stage() {
            return false;
        }
        let e = self.stage.last().unwrap();
        e.at == t && matches!(e.ev, Event::Call(_))
    }

    fn contains(&self, key: (Time, u64)) -> bool {
        // Valid only for keys that were never cancelled (the kernel's
        // timer-probe contract): pops are strictly increasing, so a key is
        // still queued iff it is beyond the last one handed out.
        key > self.last_popped && !self.cancelled.contains(&key.1)
    }

    fn cancel(&mut self, key: (Time, u64)) -> bool {
        if !self.contains(key) {
            return false;
        }
        self.cancelled.insert(key.1);
        self.live -= 1;
        true
    }
}

pub(crate) struct BTreeQueue {
    map: BTreeMap<(Time, u64), Event>,
}

/// The kernel's pending-event set; see the module docs for the two
/// implementations.
pub(crate) enum EventQueue {
    Calendar(CalendarQueue),
    BTree(BTreeQueue),
}

impl EventQueue {
    pub(crate) fn new(kind: QueueKind) -> EventQueue {
        match kind {
            QueueKind::Calendar => EventQueue::Calendar(CalendarQueue::new()),
            QueueKind::BTree => EventQueue::BTree(BTreeQueue {
                map: BTreeMap::new(),
            }),
        }
    }

    /// Queue `ev` at `(at, seq)`. The kernel guarantees `at` is not before
    /// the last popped time and `seq` is fresh.
    pub(crate) fn insert(&mut self, at: Time, seq: u64, ev: Event) {
        match self {
            EventQueue::Calendar(q) => q.insert(at, seq, ev),
            EventQueue::BTree(q) => {
                q.map.insert((at, seq), ev);
            }
        }
    }

    /// Remove and return the next event in `(time, seq)` order.
    pub(crate) fn pop(&mut self) -> Option<(Time, u64, Event)> {
        match self {
            EventQueue::Calendar(q) => q.pop(),
            EventQueue::BTree(q) => {
                let key = *q.map.keys().next()?;
                let ev = q.map.remove(&key).unwrap();
                Some((key.0, key.1, ev))
            }
        }
    }

    /// True when the next event is an [`Event::Call`] stamped exactly `t`
    /// (the same-timestamp batch-drain probe).
    pub(crate) fn next_is_call_at(&mut self, t: Time) -> bool {
        match self {
            EventQueue::Calendar(q) => q.next_is_call_at(t),
            EventQueue::BTree(q) => match q.map.iter().next() {
                Some((&(at, _), Event::Call(_))) => at == t,
                _ => false,
            },
        }
    }

    /// Whether the (never-cancelled) key is still queued.
    pub(crate) fn contains(&self, key: (Time, u64)) -> bool {
        match self {
            EventQueue::Calendar(q) => q.contains(key),
            EventQueue::BTree(q) => q.map.contains_key(&key),
        }
    }

    /// Cancel a queued event (timer races); true if it was still queued.
    pub(crate) fn cancel(&mut self, key: (Time, u64)) -> bool {
        match self {
            EventQueue::Calendar(q) => q.cancel(key),
            EventQueue::BTree(q) => q.map.remove(&key).is_some(),
        }
    }

    /// Number of queued, non-cancelled events.
    pub(crate) fn len(&self) -> usize {
        match self {
            EventQueue::Calendar(q) => q.live,
            EventQueue::BTree(q) => q.map.len(),
        }
    }

    #[cfg(test)]
    pub(crate) fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::ProcId;
    use crate::rng::Pcg32;

    fn wake(i: u32) -> Event {
        Event::Wake(ProcId(i))
    }

    fn wake_id(ev: &Event) -> u32 {
        match ev {
            Event::Wake(p) => p.0,
            Event::Call(_) => panic!("expected wake"),
        }
    }

    /// Drive both implementations through an identical randomized schedule
    /// of pushes, pops, and cancellations; every pop must match exactly.
    #[test]
    fn calendar_matches_btree_pop_order() {
        let mut cal = EventQueue::new(QueueKind::Calendar);
        let mut bt = EventQueue::new(QueueKind::BTree);
        let mut rng = Pcg32::new(0xC0FFEE);
        let mut seq = 0u64;
        let mut now = 0u64;
        let mut pending: Vec<(Time, u64)> = Vec::new();
        for round in 0..20_000u32 {
            let r = rng.next_u32() % 100;
            if r < 55 {
                // Push: deltas spread from same-instant to far past the
                // wheel horizon (256 µs) to exercise the overflow heap.
                let delta = match rng.next_u32() % 5 {
                    0 => 0,
                    1 => (rng.next_u32() % 1_000) as u64,
                    2 => (rng.next_u32() % 100_000) as u64,
                    3 => (rng.next_u32() % 1_000_000) as u64,
                    _ => 300_000 + (rng.next_u32() % 4_000_000) as u64,
                };
                let at = Time::from_ns(now + delta);
                cal.insert(at, seq, wake(round));
                bt.insert(at, seq, wake(round));
                pending.push((at, seq));
                seq += 1;
            } else if r < 85 {
                let a = cal.pop();
                let b = bt.pop();
                match (a, b) {
                    (None, None) => {}
                    (Some((ta, sa, ea)), Some((tb, sb, eb))) => {
                        assert_eq!((ta, sa), (tb, sb), "pop keys diverged");
                        assert_eq!(wake_id(&ea), wake_id(&eb), "payloads diverged");
                        now = ta.as_ns();
                        pending.retain(|k| *k != (ta, sa));
                    }
                    (a, b) => panic!("one queue empty, other not: {a:?} vs {b:?}",),
                }
            } else if !pending.is_empty() {
                let victim = pending.remove((rng.next_u32() as usize) % pending.len());
                assert_eq!(cal.cancel(victim), bt.cancel(victim));
                assert_eq!(cal.len(), bt.len());
            }
            assert_eq!(cal.len(), bt.len(), "live counts diverged");
        }
        // Drain what's left.
        loop {
            let a = cal.pop();
            let b = bt.pop();
            match (a, b) {
                (None, None) => break,
                (Some((ta, sa, _)), Some((tb, sb, _))) => assert_eq!((ta, sa), (tb, sb)),
                (a, b) => panic!("tail divergence: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn contains_tracks_pop_and_cancel() {
        let mut q = EventQueue::new(QueueKind::Calendar);
        q.insert(Time::from_ns(10), 0, wake(0));
        q.insert(Time::from_ns(20), 1, wake(1));
        assert!(q.contains((Time::from_ns(10), 0)));
        assert!(q.contains((Time::from_ns(20), 1)));
        let (t, s, _) = q.pop().unwrap();
        assert_eq!((t, s), (Time::from_ns(10), 0));
        assert!(!q.contains((Time::from_ns(10), 0)));
        assert!(q.cancel((Time::from_ns(20), 1)));
        assert!(!q.cancel((Time::from_ns(20), 1)));
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }

    impl std::fmt::Debug for Event {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                Event::Wake(p) => write!(f, "Wake({p})"),
                Event::Call(_) => write!(f, "Call"),
            }
        }
    }
}
