//! The event kernel: a priority queue of timed events plus a set of
//! cooperative simulated processes.
//!
//! Simulated processes are real OS threads, but **exactly one** of them
//! runs at any instant. Event ordering is `(time, insertion sequence)`, so
//! identical programs produce identical schedules — the whole simulation
//! is a deterministic function of its inputs.
//!
//! ## Dispatch model: the driver token
//!
//! There is no dedicated kernel thread while the simulation runs. The
//! dispatch loop ([`drive`]) executes on whichever thread holds the
//! *driver token* — initially the controller thread inside
//! [`Simulation::run`], and from then on whichever simulated process most
//! recently parked or finished. When a process gives up control it does
//! not bounce through a scheduler thread: it drives the event queue
//! forward itself, executing device callbacks ([`Event::Call`]) inline and
//! batching runs of same-timestamp callbacks under a single lock
//! acquisition. Control transfers to another OS thread only when a
//! [`Event::Wake`] for a *different* process is dispatched (one
//! gate-wake + one context switch), and a wake for the driving process
//! itself costs no switch at all. The original design paid two context
//! switches and four channel operations per wake; this one pays at most
//! one switch, which is what moves the kernel from ~150k to deep into the
//! hundreds of thousands of events per second on one core.
//!
//! Hot-path state ([`KernelState`]) is touched exactly once per dispatched
//! wake (pop + accounting + handoff under one lock). The state mutex
//! remains — device models and processes schedule events from their own
//! threads — but it is uncontended by construction: only the active thread
//! takes it, except for the brief handoff window.
//!
//! ## Clock monotonicity
//!
//! Virtual time never moves backwards. [`KernelState::push_event`] clamps
//! past-stamped events to `now` and counts them (`sched_past`); the
//! dispatch loop asserts monotonicity in all build profiles. (The previous
//! kernel only `debug_assert`ed, so a release build could silently rewind
//! the clock and corrupt every latency measurement downstream.)

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::gate::Gate;
use crate::handle::SimHandle;
use crate::proc::{Proc, ShutdownUnwind};
use crate::queue::{default_queue_kind, EventQueue, QueueKind};
use crate::sync::Mutex;
use crate::time::Time;

/// Identifies a simulated process.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ProcId(pub(crate) u32);

impl ProcId {
    /// Dense index of this process (spawn order).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for ProcId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "proc#{}", self.0)
    }
}

/// Command handed to a parked process when it is woken.
#[derive(Copy, Clone, Debug)]
pub(crate) enum Go {
    Run,
    Shutdown,
}

/// Why a parked process is parked. Used by the termination logic: when the
/// event queue is empty no process can be parked on a timer.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub(crate) enum ParkKind {
    /// Not parked (running, or never started).
    Running,
    /// Waiting for a `Wake` already in the event queue (e.g. `advance`).
    Timer,
    /// Waiting for a [`crate::Signal`] with the given id.
    Signal(u64),
}

pub(crate) type CallFn = Box<dyn FnOnce(&SimHandle) + Send>;

pub(crate) enum Event {
    Wake(ProcId),
    Call(CallFn),
}

pub(crate) struct ProcSlot {
    pub name: String,
    pub daemon: bool,
    pub finished: bool,
    pub park: ParkKind,
    pub gate: Arc<Gate>,
}

/// Chunked slab for [`ProcSlot`]s: pushes never move existing slots, so
/// spawn-heavy churn workloads (thousands of short-lived ranks) stop
/// paying reallocation copies of the whole process table.
pub(crate) struct ProcArena {
    chunks: Vec<Vec<ProcSlot>>,
    len: usize,
}

const ARENA_CHUNK: usize = 128;

impl ProcArena {
    fn new() -> ProcArena {
        ProcArena {
            chunks: Vec::new(),
            len: 0,
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }

    fn push(&mut self, slot: ProcSlot) -> usize {
        if self.chunks.last().is_none_or(|c| c.len() == ARENA_CHUNK) {
            self.chunks.push(Vec::with_capacity(ARENA_CHUNK));
        }
        self.chunks.last_mut().unwrap().push(slot);
        self.len += 1;
        self.len - 1
    }

    #[inline]
    pub(crate) fn get(&self, idx: usize) -> &ProcSlot {
        &self.chunks[idx / ARENA_CHUNK][idx % ARENA_CHUNK]
    }

    #[inline]
    pub(crate) fn get_mut(&mut self, idx: usize) -> &mut ProcSlot {
        &mut self.chunks[idx / ARENA_CHUNK][idx % ARENA_CHUNK]
    }

    pub(crate) fn iter(&self) -> impl Iterator<Item = (usize, &ProcSlot)> {
        self.chunks.iter().flatten().enumerate()
    }
}

/// FNV-1a offset basis / prime for the schedule hash.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Schedule-hash tags, one per dispatch category.
const HASH_CALL: u64 = 1;
const HASH_WAKE: u64 = 2;
const HASH_STALE: u64 = 3;

pub(crate) struct KernelState {
    pub now: Time,
    pub seq: u64,
    pub queue: EventQueue,
    pub procs: ProcArena,
    /// Daemons are being shut down; waits observe `Wait::Shutdown`.
    pub shutdown: bool,
    /// The run outcome is decided; no thread may drive any further.
    pub teardown: bool,
    pub result: Option<Result<Report, SimError>>,
    pub events_processed: u64,
    pub event_limit: u64,
    pub next_signal_id: u64,
    /// High-water mark of the event-queue length (profiling).
    pub max_queue_depth: usize,
    /// Process wakeups executed (vs. device-callback events).
    pub wakes_executed: u64,
    /// Device-callback closures executed (the `Event::Call` category).
    pub calls_executed: u64,
    /// Wakes popped for already-finished processes (skipped, and excluded
    /// from the headline events/s figure).
    pub stale_wakes: u64,
    /// Events whose requested timestamp was in the past and was clamped to
    /// `now` instead of rewinding the clock.
    pub sched_past: u64,
    /// Running FNV-1a fold of every dispatched event `(time, kind, proc)` —
    /// the determinism fingerprint compared across queue implementations.
    pub schedule_hash: u64,
}

impl KernelState {
    /// Queue `ev` at `at` (clamped to `now`: the virtual clock is monotone
    /// as a hard invariant, and a past-stamped event is counted in
    /// `sched_past` rather than silently rewinding time). Returns the
    /// unique `(time, seq)` key of the queued event.
    pub(crate) fn push_event(&mut self, at: Time, ev: Event) -> (Time, u64) {
        let at = if at < self.now {
            self.sched_past += 1;
            self.now
        } else {
            at
        };
        let key = (at, self.seq);
        self.seq += 1;
        self.queue.insert(at, key.1, ev);
        self.max_queue_depth = self.max_queue_depth.max(self.queue.len());
        key
    }

    #[inline]
    fn fold_hash(&mut self, t: Time, tag: u64, pid: u64) {
        let mut h = self.schedule_hash;
        for v in [t.as_ns(), (tag << 32) | pid] {
            h ^= v;
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.schedule_hash = h;
    }

    /// Decide the run outcome (first decision wins) and stop all driving.
    fn finish(&mut self, result: Result<Report, SimError>) {
        if self.result.is_none() {
            self.result = Some(result);
        }
        self.teardown = true;
    }

    fn report(&self) -> Report {
        Report {
            end_time: self.now,
            events_processed: self.events_processed,
            procs_spawned: self.procs.len(),
            max_queue_depth: self.max_queue_depth,
            wakes_executed: self.wakes_executed,
            calls_executed: self.calls_executed,
            stale_wakes: self.stale_wakes,
            sched_past: self.sched_past,
            schedule_hash: self.schedule_hash,
            wall_ns: 0, // filled in by `run`
        }
    }
}

pub(crate) struct Shared {
    pub state: Mutex<KernelState>,
    /// Mirror of `state.now` for lock-free clock reads (`SimHandle::now`).
    pub now_ns: AtomicU64,
    /// Gate the controller thread waits on inside [`Simulation::run`].
    pub controller: Gate,
    /// Join handles of spawned process threads (collected at the end of run).
    pub joins: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

/// Error terminating a simulation run.
#[derive(Debug)]
pub enum SimError {
    /// A simulated process panicked.
    ProcPanic {
        /// Name the process was spawned with.
        proc: String,
        /// The panic payload, stringified.
        message: String,
    },
    /// The event queue drained while non-daemon processes were still parked.
    Deadlock {
        /// Names of the parked processes.
        parked: Vec<String>,
    },
    /// More events were processed than the configured limit (runaway guard).
    EventLimit {
        /// The configured event limit.
        limit: u64,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::ProcPanic { proc, message } => {
                write!(f, "simulated process `{proc}` panicked: {message}")
            }
            SimError::Deadlock { parked } => write!(
                f,
                "simulation deadlock: event queue empty but processes parked: {}",
                parked.join(", ")
            ),
            SimError::EventLimit { limit } => {
                write!(f, "simulation exceeded event limit of {limit}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Summary of a completed run, including the kernel-level profile the
/// telemetry layer surfaces next to per-endpoint metrics.
#[derive(Debug, Clone)]
pub struct Report {
    /// Virtual time at which the last event executed.
    pub end_time: Time,
    /// Number of events the kernel dispatched (including skipped stale
    /// wakes, matching the event-limit accounting).
    pub events_processed: u64,
    /// Total simulated processes created over the run.
    pub procs_spawned: usize,
    /// High-water mark of event-queue occupancy over the run.
    pub max_queue_depth: usize,
    /// Process wakeups actually executed (stale wakes for finished
    /// processes are *not* counted here — they are `stale_wakes`).
    pub wakes_executed: u64,
    /// Device-callback events among the executed events.
    pub calls_executed: u64,
    /// Wakes popped for already-finished processes: skipped, counted
    /// separately, and excluded from [`Report::events_per_sec`].
    pub stale_wakes: u64,
    /// Events scheduled with a past timestamp and clamped to `now`.
    pub sched_past: u64,
    /// FNV-1a fold of the full dispatch schedule `(time, kind, proc)`;
    /// equal hashes mean bit-identical schedules.
    pub schedule_hash: u64,
    /// Wall-clock time the kernel spent driving the run, in nanoseconds.
    pub wall_ns: u64,
}

impl Report {
    /// Simulated events executed per wall-clock second — the headline
    /// throughput figure for the simulator itself. Stale wakes (skipped
    /// no-ops) are excluded so the figure counts only real work.
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            let executed = self.events_processed - self.stale_wakes;
            executed as f64 * 1e9 / self.wall_ns as f64
        }
    }
}

/// What a [`drive`] call did on behalf of the calling thread.
pub(crate) enum Driven {
    /// The caller's own wake was dispatched: resume running immediately
    /// (no context switch).
    Resume,
    /// The driver token moved to another thread; the caller should wait on
    /// its gate (parked processes) or exit (finished ones / controller).
    Transferred,
    /// The run outcome was decided; the caller should observe shutdown.
    Ended,
}

/// Dispatch events on the calling thread until control must leave it.
///
/// `me` is the calling process when it is parking (so a wake for itself is
/// a free resume), or `None` for the controller and finished processes.
pub(crate) fn drive(shared: &Arc<Shared>, me: Option<ProcId>) -> Driven {
    enum Action {
        RunCalls,
        Resume,
        Transfer(Arc<Gate>, Go),
        Ended,
    }

    let handle = SimHandle::new(shared.clone());
    let mut calls: Vec<CallFn> = Vec::new();
    loop {
        let action = {
            let mut st = shared.state.lock();
            if st.teardown {
                Action::Ended
            } else {
                loop {
                    if st.events_processed >= st.event_limit {
                        let limit = st.event_limit;
                        st.finish(Err(SimError::EventLimit { limit }));
                        break Action::Ended;
                    }
                    let Some((t, _seq, ev)) = st.queue.pop() else {
                        // Queue drained: completion, daemon shutdown, or
                        // deadlock. Every unfinished process is parked (the
                        // driver token is here, so nothing else runs).
                        let mut parked_nondaemon = Vec::new();
                        let mut first_daemon = None;
                        for (idx, slot) in st.procs.iter() {
                            if slot.finished {
                                continue;
                            }
                            if slot.daemon {
                                if first_daemon.is_none() {
                                    first_daemon = Some(idx);
                                }
                            } else {
                                parked_nondaemon.push(slot.name.clone());
                            }
                        }
                        if !parked_nondaemon.is_empty() {
                            st.finish(Err(SimError::Deadlock {
                                parked: parked_nondaemon,
                            }));
                            break Action::Ended;
                        }
                        let Some(idx) = first_daemon else {
                            let report = st.report();
                            st.finish(Ok(report));
                            break Action::Ended;
                        };
                        // Shut daemons down one at a time, in spawn order;
                        // each one finishing drives us back here for the next.
                        st.shutdown = true;
                        let slot = st.procs.get_mut(idx);
                        slot.park = ParkKind::Running;
                        break Action::Transfer(slot.gate.clone(), Go::Shutdown);
                    };
                    // Hard invariant in every build profile: the virtual
                    // clock is monotone (push_event clamps, so this can
                    // only fire on a kernel bug).
                    assert!(t >= st.now, "virtual clock would move backwards");
                    st.now = t;
                    shared.now_ns.store(t.as_ns(), Ordering::Release);
                    st.events_processed += 1;
                    match ev {
                        Event::Call(f) => {
                            st.calls_executed += 1;
                            st.fold_hash(t, HASH_CALL, 0);
                            calls.push(f);
                            // Batch-drain the run of same-timestamp callbacks
                            // without re-locking between them.
                            while st.events_processed < st.event_limit
                                && st.queue.next_is_call_at(t)
                            {
                                let Some((_, _, Event::Call(f2))) = st.queue.pop() else {
                                    unreachable!("probe said next is a call");
                                };
                                st.events_processed += 1;
                                st.calls_executed += 1;
                                st.fold_hash(t, HASH_CALL, 0);
                                calls.push(f2);
                            }
                            break Action::RunCalls;
                        }
                        Event::Wake(pid) => {
                            let slot = st.procs.get_mut(pid.index());
                            if slot.finished {
                                // A stale wake (e.g. the leftover timer of a
                                // wait that raced its signal): skip it, and
                                // keep it out of the headline throughput.
                                st.stale_wakes += 1;
                                st.fold_hash(t, HASH_STALE, pid.0 as u64);
                                continue;
                            }
                            slot.park = ParkKind::Running;
                            let gate = slot.gate.clone();
                            st.wakes_executed += 1;
                            st.fold_hash(t, HASH_WAKE, pid.0 as u64);
                            if me == Some(pid) {
                                break Action::Resume;
                            }
                            break Action::Transfer(gate, Go::Run);
                        }
                    }
                }
            }
        };
        match action {
            Action::RunCalls => {
                for f in calls.drain(..) {
                    f(&handle);
                }
            }
            Action::Resume => return Driven::Resume,
            Action::Transfer(gate, go) => {
                gate.wake(go);
                return Driven::Transferred;
            }
            Action::Ended => {
                shared.controller.wake(Go::Run);
                return Driven::Ended;
            }
        }
    }
}

pub(crate) fn spawn_proc(
    shared: &Arc<Shared>,
    name: &str,
    daemon: bool,
    f: impl FnOnce(Proc) + Send + 'static,
) -> ProcId {
    let gate = Arc::new(Gate::new());
    let pid;
    {
        let mut st = shared.state.lock();
        pid = ProcId(st.procs.len() as u32);
        st.procs.push(ProcSlot {
            name: name.to_string(),
            daemon,
            finished: false,
            park: ParkKind::Timer, // will be woken by the spawn event
            gate: gate.clone(),
        });
        let at = st.now;
        st.push_event(at, Event::Wake(pid));
    }
    let proc = Proc::new(pid, shared.clone(), gate.clone());
    let shared2 = shared.clone();
    let thread_name = format!("sim-{name}");
    let join = std::thread::Builder::new()
        .name(thread_name)
        .spawn(move || {
            gate.register();
            // Wait for the kernel to schedule our first run.
            match gate.wait() {
                Go::Run => {}
                Go::Shutdown => {
                    finish_proc(&shared2, pid, None);
                    return;
                }
            }
            let result = catch_unwind(AssertUnwindSafe(move || f(proc)));
            match result {
                Ok(()) => finish_proc(&shared2, pid, None),
                Err(payload) => {
                    if payload.downcast_ref::<ShutdownUnwind>().is_some() {
                        // Forced unwind during teardown, not a real panic.
                        finish_proc(&shared2, pid, None);
                    } else {
                        let msg = payload_to_string(&*payload);
                        finish_proc(&shared2, pid, Some(msg));
                    }
                }
            }
        })
        .expect("failed to spawn simulated process thread");
    shared.joins.lock().push(join);
    pid
}

/// Mark `pid` finished and either hand the outcome to the controller (when
/// the run is over or `pid` panicked) or keep driving the schedule forward
/// on this thread.
fn finish_proc(shared: &Arc<Shared>, pid: ProcId, panic_msg: Option<String>) {
    let teardown = {
        let mut st = shared.state.lock();
        st.procs.get_mut(pid.index()).finished = true;
        if let Some(message) = panic_msg {
            let proc = st.procs.get(pid.index()).name.clone();
            st.finish(Err(SimError::ProcPanic { proc, message }));
        }
        st.teardown
    };
    if teardown {
        shared.controller.wake(Go::Run);
        return;
    }
    // The finishing thread keeps the driver token and pushes the schedule
    // forward until control transfers or the run ends.
    let _ = drive(shared, None);
}

fn payload_to_string(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// A whole simulation: build, spawn root processes, then [`Simulation::run`].
pub struct Simulation {
    shared: Arc<Shared>,
}

impl Default for Simulation {
    fn default() -> Self {
        Self::new()
    }
}

impl Simulation {
    /// A fresh simulation at t = 0 with an empty event queue, using the
    /// process-global default queue kind (see
    /// [`crate::set_default_queue_kind`]).
    pub fn new() -> Self {
        Self::with_queue(default_queue_kind())
    }

    /// A fresh simulation using a specific event-queue implementation.
    pub fn with_queue(kind: QueueKind) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(KernelState {
                now: Time::ZERO,
                seq: 0,
                queue: EventQueue::new(kind),
                procs: ProcArena::new(),
                shutdown: false,
                teardown: false,
                result: None,
                events_processed: 0,
                event_limit: u64::MAX,
                next_signal_id: 0,
                max_queue_depth: 0,
                wakes_executed: 0,
                calls_executed: 0,
                stale_wakes: 0,
                sched_past: 0,
                schedule_hash: FNV_OFFSET,
            }),
            now_ns: AtomicU64::new(0),
            controller: Gate::new(),
            joins: Mutex::new(Vec::new()),
        });
        Simulation { shared }
    }

    /// Guard against runaway simulations (e.g. a polling loop that never
    /// advances time correctly would still consume events).
    pub fn set_event_limit(&self, limit: u64) {
        self.shared.state.lock().event_limit = limit;
    }

    /// Handle usable by device models and test scaffolding.
    pub fn handle(&self) -> SimHandle {
        SimHandle::new(self.shared.clone())
    }

    /// Spawn a root (non-daemon) simulated process starting at t=0.
    pub fn spawn(&self, name: &str, f: impl FnOnce(Proc) + Send + 'static) -> ProcId {
        spawn_proc(&self.shared, name, false, f)
    }

    /// Spawn a daemon process: the run ends once all non-daemon processes
    /// finish; parked daemons then observe `Wait::Shutdown`.
    pub fn spawn_daemon(&self, name: &str, f: impl FnOnce(Proc) + Send + 'static) -> ProcId {
        spawn_proc(&self.shared, name, true, f)
    }

    /// Drive the simulation to completion.
    pub fn run(self) -> Result<Report, SimError> {
        self.shared.controller.register();
        let started = std::time::Instant::now();
        // The controller drives until the first handoff; after that the
        // token circulates among process threads until the outcome is
        // decided by whichever thread observes it.
        let _ = drive(&self.shared, None);
        loop {
            if self.shared.state.lock().teardown {
                break;
            }
            let _ = self.shared.controller.wait();
        }
        // Teardown: unblock parked processes (repeatedly — a process may
        // park again while unwinding) until every thread has finished.
        loop {
            let gates: Vec<Arc<Gate>> = {
                let st = self.shared.state.lock();
                st.procs
                    .iter()
                    .filter(|(_, s)| !s.finished)
                    .map(|(_, s)| s.gate.clone())
                    .collect()
            };
            if gates.is_empty() {
                break;
            }
            for g in &gates {
                g.wake(Go::Shutdown);
            }
            let _ = self.shared.controller.wait();
        }
        let joins = std::mem::take(&mut *self.shared.joins.lock());
        for j in joins {
            let _ = j.join();
        }
        let result = self
            .shared
            .state
            .lock()
            .result
            .take()
            .expect("run ended without a result");
        result.map(|mut report| {
            report.wall_ns = started.elapsed().as_nanos() as u64;
            report
        })
    }
}

impl Drop for Simulation {
    fn drop(&mut self) {
        // A simulation dropped without `run` still has process threads
        // parked at their start gates; release them so nothing leaks.
        let gates: Vec<Arc<Gate>> = {
            let mut st = self.shared.state.lock();
            st.teardown = true;
            st.procs
                .iter()
                .filter(|(_, s)| !s.finished)
                .map(|(_, s)| s.gate.clone())
                .collect()
        };
        for g in gates {
            g.wake(Go::Shutdown);
        }
        let joins = std::mem::take(&mut *self.shared.joins.lock());
        for j in joins {
            let _ = j.join();
        }
    }
}
