//! The event kernel: a priority queue of timed events plus a set of
//! cooperative simulated processes.
//!
//! Simulated processes are real OS threads, but **exactly one** of them (or
//! the kernel itself) runs at any instant: the kernel hands control to a
//! process and waits until that process parks again. Event ordering is
//! `(time, insertion sequence)`, so identical programs produce identical
//! schedules — the whole simulation is deterministic.

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use std::sync::mpsc::{channel, Receiver, Sender};

use crate::sync::Mutex;

use crate::handle::SimHandle;
use crate::proc::Proc;
use crate::time::Time;

/// Identifies a simulated process.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ProcId(pub(crate) u32);

impl ProcId {
    /// Dense index of this process (spawn order).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for ProcId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "proc#{}", self.0)
    }
}

/// Message from the kernel to a parked process.
#[derive(Debug)]
pub(crate) enum Go {
    Run,
    Shutdown,
}

/// Message from the running process back to the kernel.
pub(crate) enum YieldMsg {
    Parked(ProcId),
    Finished(ProcId),
    Panicked(ProcId, String),
}

/// Why a parked process is parked. Used by the termination logic: when the
/// event queue is empty no process can be parked on a timer.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub(crate) enum ParkKind {
    /// Not parked (running, or never started).
    Running,
    /// Waiting for a `Wake` already in the event queue (e.g. `advance`).
    Timer,
    /// Waiting for a [`crate::Signal`] with the given id.
    Signal(u64),
}

pub(crate) enum Event {
    Wake(ProcId),
    Call(Box<dyn FnOnce(&SimHandle) + Send>),
}

pub(crate) struct ProcSlot {
    pub name: String,
    pub daemon: bool,
    pub finished: bool,
    pub park: ParkKind,
    pub go_tx: Sender<Go>,
}

pub(crate) struct KernelState {
    pub now: Time,
    pub seq: u64,
    pub queue: BTreeMap<(Time, u64), Event>,
    pub procs: Vec<ProcSlot>,
    pub shutdown: bool,
    pub events_processed: u64,
    pub event_limit: u64,
    pub next_signal_id: u64,
    /// High-water mark of the event-queue length (profiling).
    pub max_queue_depth: usize,
    /// Process wakeups executed (vs. device-callback events).
    pub wakes_executed: u64,
    /// Device-callback closures executed (the `Event::Call` category).
    pub calls_executed: u64,
}

impl KernelState {
    pub(crate) fn push_event(&mut self, at: Time, ev: Event) {
        debug_assert!(at >= self.now, "event scheduled in the past");
        let key = (at, self.seq);
        self.seq += 1;
        self.queue.insert(key, ev);
        self.max_queue_depth = self.max_queue_depth.max(self.queue.len());
    }
}

pub(crate) struct Shared {
    pub state: Mutex<KernelState>,
    pub yield_tx: Sender<YieldMsg>,
    // Only the kernel thread receives; the Mutex exists because `mpsc`'s
    // Receiver is not Sync and Shared is reachable from every proc thread.
    yield_rx: Mutex<Receiver<YieldMsg>>,
    /// Join handles of spawned process threads (collected at the end of run).
    pub joins: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

/// Error terminating a simulation run.
#[derive(Debug)]
pub enum SimError {
    /// A simulated process panicked.
    ProcPanic {
        /// Name the process was spawned with.
        proc: String,
        /// The panic payload, stringified.
        message: String,
    },
    /// The event queue drained while non-daemon processes were still parked.
    Deadlock {
        /// Names of the parked processes.
        parked: Vec<String>,
    },
    /// More events were processed than the configured limit (runaway guard).
    EventLimit {
        /// The configured event limit.
        limit: u64,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::ProcPanic { proc, message } => {
                write!(f, "simulated process `{proc}` panicked: {message}")
            }
            SimError::Deadlock { parked } => write!(
                f,
                "simulation deadlock: event queue empty but processes parked: {}",
                parked.join(", ")
            ),
            SimError::EventLimit { limit } => {
                write!(f, "simulation exceeded event limit of {limit}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Summary of a completed run, including the kernel-level profile the
/// telemetry layer surfaces next to per-endpoint metrics.
#[derive(Debug, Clone)]
pub struct Report {
    /// Virtual time at which the last event executed.
    pub end_time: Time,
    /// Number of events the kernel executed.
    pub events_processed: u64,
    /// Total simulated processes created over the run.
    pub procs_spawned: usize,
    /// High-water mark of event-queue occupancy over the run.
    pub max_queue_depth: usize,
    /// Process wakeups among the executed events (the rest were device
    /// callbacks such as NIC state transitions).
    pub wakes_executed: u64,
    /// Device-callback events among the executed events.
    pub calls_executed: u64,
    /// Wall-clock time the kernel spent driving the run, in nanoseconds.
    pub wall_ns: u64,
}

impl Report {
    /// Simulated events executed per wall-clock second — the headline
    /// throughput figure for the simulator itself.
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            self.events_processed as f64 * 1e9 / self.wall_ns as f64
        }
    }
}

/// A whole simulation: build, spawn root processes, then [`Simulation::run`].
pub struct Simulation {
    shared: Arc<Shared>,
}

impl Default for Simulation {
    fn default() -> Self {
        Self::new()
    }
}

impl Simulation {
    /// A fresh simulation at t = 0 with an empty event queue.
    pub fn new() -> Self {
        let (yield_tx, yield_rx) = channel();
        let shared = Arc::new(Shared {
            state: Mutex::new(KernelState {
                now: Time::ZERO,
                seq: 0,
                queue: BTreeMap::new(),
                procs: Vec::new(),
                shutdown: false,
                events_processed: 0,
                event_limit: u64::MAX,
                next_signal_id: 0,
                max_queue_depth: 0,
                wakes_executed: 0,
                calls_executed: 0,
            }),
            yield_tx,
            yield_rx: Mutex::new(yield_rx),
            joins: Mutex::new(Vec::new()),
        });
        Simulation { shared }
    }

    /// Guard against runaway simulations (e.g. a polling loop that never
    /// advances time correctly would still consume events).
    pub fn set_event_limit(&self, limit: u64) {
        self.shared.state.lock().event_limit = limit;
    }

    /// Handle usable by device models and test scaffolding.
    pub fn handle(&self) -> SimHandle {
        SimHandle::new(self.shared.clone())
    }

    /// Spawn a root (non-daemon) simulated process starting at t=0.
    pub fn spawn(&self, name: &str, f: impl FnOnce(Proc) + Send + 'static) -> ProcId {
        spawn_proc(&self.shared, name, false, f)
    }

    /// Spawn a daemon process: the run ends once all non-daemon processes
    /// finish; parked daemons then observe `Wait::Shutdown`.
    pub fn spawn_daemon(&self, name: &str, f: impl FnOnce(Proc) + Send + 'static) -> ProcId {
        spawn_proc(&self.shared, name, true, f)
    }

    /// Drive the simulation to completion.
    pub fn run(self) -> Result<Report, SimError> {
        let started = std::time::Instant::now();
        let handle = self.handle();
        let result = self.main_loop(&handle);
        let result = result.map(|mut report| {
            report.wall_ns = started.elapsed().as_nanos() as u64;
            report
        });
        // Unblock any threads still parked so the process can exit, then join.
        {
            let st = self.shared.state.lock();
            for slot in st.procs.iter().filter(|p| !p.finished) {
                let _ = slot.go_tx.send(Go::Shutdown);
            }
        }
        // Drain remaining yield messages until every proc finished.
        loop {
            let all_done = {
                let st = self.shared.state.lock();
                st.procs.iter().all(|p| p.finished)
            };
            if all_done {
                break;
            }
            match self.shared.yield_rx.lock().recv() {
                Ok(YieldMsg::Finished(pid)) | Ok(YieldMsg::Panicked(pid, _)) => {
                    self.shared.state.lock().procs[pid.index()].finished = true;
                }
                Ok(YieldMsg::Parked(pid)) => {
                    // Parked again during forced shutdown: shove it forward.
                    let st = self.shared.state.lock();
                    let _ = st.procs[pid.index()].go_tx.send(Go::Shutdown);
                }
                Err(_) => break,
            }
        }
        let joins = std::mem::take(&mut *self.shared.joins.lock());
        for j in joins {
            let _ = j.join();
        }
        result
    }

    fn main_loop(&self, handle: &SimHandle) -> Result<Report, SimError> {
        loop {
            let next = {
                let mut st = self.shared.state.lock();
                if st.events_processed >= st.event_limit {
                    return Err(SimError::EventLimit {
                        limit: st.event_limit,
                    });
                }
                match st.queue.keys().next().copied() {
                    Some(key) => {
                        let ev = st.queue.remove(&key).unwrap();
                        st.now = key.0;
                        st.events_processed += 1;
                        Some(ev)
                    }
                    None => None,
                }
            };
            match next {
                Some(Event::Call(f)) => {
                    self.shared.state.lock().calls_executed += 1;
                    f(handle);
                }
                Some(Event::Wake(pid)) => {
                    self.shared.state.lock().wakes_executed += 1;
                    self.run_proc(pid, Go::Run)?;
                }
                None => {
                    // Queue drained. Decide between completion, daemon
                    // shutdown, and deadlock.
                    let (live_nondaemon, live_daemon): (Vec<_>, Vec<_>) = {
                        let st = self.shared.state.lock();
                        let live: Vec<(ProcId, bool, String)> = st
                            .procs
                            .iter()
                            .enumerate()
                            .filter(|(_, p)| !p.finished)
                            .map(|(i, p)| (ProcId(i as u32), p.daemon, p.name.clone()))
                            .collect();
                        live.into_iter().partition(|(_, d, _)| !*d)
                    };
                    if !live_nondaemon.is_empty() {
                        return Err(SimError::Deadlock {
                            parked: live_nondaemon.into_iter().map(|(_, _, n)| n).collect(),
                        });
                    }
                    if live_daemon.is_empty() {
                        let st = self.shared.state.lock();
                        return Ok(Report {
                            end_time: st.now,
                            events_processed: st.events_processed,
                            procs_spawned: st.procs.len(),
                            max_queue_depth: st.max_queue_depth,
                            wakes_executed: st.wakes_executed,
                            calls_executed: st.calls_executed,
                            wall_ns: 0, // filled in by `run`
                        });
                    }
                    // Shut daemons down one at a time (preserves the
                    // one-runnable-process invariant).
                    self.shared.state.lock().shutdown = true;
                    let (pid, _, _) = live_daemon[0];
                    self.run_proc(pid, Go::Shutdown)?;
                }
            }
        }
    }

    /// Hand control to `pid` and block until it parks or finishes.
    fn run_proc(&self, pid: ProcId, go: Go) -> Result<(), SimError> {
        {
            let mut st = self.shared.state.lock();
            let slot = &mut st.procs[pid.index()];
            if slot.finished {
                // A stale wake for a finished proc: ignore.
                return Ok(());
            }
            slot.park = ParkKind::Running;
            slot.go_tx.send(go).expect("proc thread lost");
        }
        match self
            .shared
            .yield_rx
            .lock()
            .recv()
            .expect("yield channel closed")
        {
            YieldMsg::Parked(p) => {
                debug_assert_eq!(p, pid, "yield from a process that was not running");
                Ok(())
            }
            YieldMsg::Finished(p) => {
                debug_assert_eq!(p, pid);
                self.shared.state.lock().procs[p.index()].finished = true;
                Ok(())
            }
            YieldMsg::Panicked(p, message) => {
                let mut st = self.shared.state.lock();
                st.procs[p.index()].finished = true;
                let name = st.procs[p.index()].name.clone();
                Err(SimError::ProcPanic {
                    proc: name,
                    message,
                })
            }
        }
    }
}

pub(crate) fn spawn_proc(
    shared: &Arc<Shared>,
    name: &str,
    daemon: bool,
    f: impl FnOnce(Proc) + Send + 'static,
) -> ProcId {
    let (go_tx, go_rx) = channel();
    let pid;
    {
        let mut st = shared.state.lock();
        pid = ProcId(st.procs.len() as u32);
        st.procs.push(ProcSlot {
            name: name.to_string(),
            daemon,
            finished: false,
            park: ParkKind::Timer, // will be woken by the spawn event
            go_tx,
        });
        let at = st.now;
        st.push_event(at, Event::Wake(pid));
    }
    let proc = Proc::new(pid, shared.clone(), go_rx);
    let yield_tx = shared.yield_tx.clone();
    let thread_name = format!("sim-{name}");
    let join = std::thread::Builder::new()
        .name(thread_name)
        .spawn(move || {
            // Wait for the kernel to schedule our first run.
            match proc.initial_go() {
                Go::Run => {}
                Go::Shutdown => {
                    let _ = yield_tx.send(YieldMsg::Finished(pid));
                    return;
                }
            }
            let result = catch_unwind(AssertUnwindSafe(move || f(proc)));
            match result {
                Ok(()) => {
                    let _ = yield_tx.send(YieldMsg::Finished(pid));
                }
                Err(payload) => {
                    let msg = payload_to_string(&*payload);
                    let _ = yield_tx.send(YieldMsg::Panicked(pid, msg));
                }
            }
        })
        .expect("failed to spawn simulated process thread");
    shared.joins.lock().push(join);
    pid
}

fn payload_to_string(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}
