//! [`SimHandle`] — the capability that device models and processes use to
//! read the clock and schedule future work.

use std::sync::Arc;

use crate::kernel::{Event, Shared};
use crate::time::{Dur, Time};

/// A cloneable handle onto the simulation kernel.
///
/// Device models (NICs, switches) capture a `SimHandle` and use
/// [`SimHandle::call_after`] to schedule their internal state transitions.
/// All scheduled closures run on the kernel thread, serialized with every
/// simulated process, so device state guarded by a mutex is effectively
/// single-threaded.
#[derive(Clone)]
pub struct SimHandle {
    pub(crate) shared: Arc<Shared>,
}

impl SimHandle {
    pub(crate) fn new(shared: Arc<Shared>) -> Self {
        SimHandle { shared }
    }

    /// Current virtual time (lock-free: reads the kernel's clock mirror).
    pub fn now(&self) -> Time {
        Time::from_ns(
            self.shared
                .now_ns
                .load(std::sync::atomic::Ordering::Acquire),
        )
    }

    /// Run `f` after `delay` of virtual time.
    pub fn call_after(&self, delay: Dur, f: impl FnOnce(&SimHandle) + Send + 'static) {
        let mut st = self.shared.state.lock();
        let at = st.now + delay;
        st.push_event(at, Event::Call(Box::new(f)));
    }

    /// Run `f` at the absolute virtual time `at`. A past `at` is clamped to
    /// the current time (and counted in the report's `sched_past`): the
    /// virtual clock never moves backwards.
    pub fn call_at(&self, at: Time, f: impl FnOnce(&SimHandle) + Send + 'static) {
        let mut st = self.shared.state.lock();
        st.push_event(at, Event::Call(Box::new(f)));
    }
}

impl std::fmt::Debug for SimHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SimHandle({})", self.now())
    }
}

#[cfg(test)]
mod tests {
    use crate::sync::Mutex;
    use crate::{Dur, Simulation, Time};
    use std::sync::Arc;

    #[test]
    fn call_at_in_the_past_clamps_to_now() {
        let sim = Simulation::new();
        let order = Arc::new(Mutex::new(Vec::new()));
        let h = sim.handle();
        let o = order.clone();
        h.call_after(Dur::from_us(5), move |s| {
            // Scheduling for t=1us while now=5us must fire "now", not hang
            // or travel back.
            let o2 = o.clone();
            s.call_at(Time::from_ns(1_000), move |s2| {
                o2.lock().push(s2.now().as_ns());
            });
        });
        let report = sim.run().unwrap();
        assert_eq!(*order.lock(), vec![5_000]);
        // The clamp is counted, not silent.
        assert_eq!(report.sched_past, 1);
    }

    #[test]
    fn nested_calls_preserve_fifo_at_equal_times() {
        let sim = Simulation::new();
        let order = Arc::new(Mutex::new(Vec::new()));
        let h = sim.handle();
        for i in 0..4u32 {
            let o = order.clone();
            h.call_after(Dur::from_us(1), move |_| o.lock().push(i));
        }
        sim.run().unwrap();
        assert_eq!(*order.lock(), vec![0, 1, 2, 3]);
    }
}
