//! # qsim — deterministic discrete-event simulation kernel
//!
//! The substrate for the Open MPI / Quadrics-Elan4 reproduction: a virtual
//! clock, an event queue, and cooperative *simulated processes*.
//!
//! Simulated processes are real OS threads, which lets MPI ranks be written
//! as ordinary blocking Rust code, but the kernel enforces that at most one
//! process runs at a time and that control transfers only through the event
//! queue. Events at equal times execute in insertion order, so a simulation
//! is a deterministic function of its inputs — latencies measured in virtual
//! time are exactly reproducible.
//!
//! ## Example
//!
//! ```
//! use qsim::{Simulation, Dur};
//! use std::sync::{Arc, atomic::{AtomicU64, Ordering}};
//!
//! let sim = Simulation::new();
//! let end = Arc::new(AtomicU64::new(0));
//! let end2 = end.clone();
//! sim.spawn("worker", move |p| {
//!     p.advance(Dur::from_us(3));          // model 3us of work
//!     end2.store(p.now().as_ns(), Ordering::SeqCst);
//! });
//! sim.run().unwrap();
//! assert_eq!(end.load(Ordering::SeqCst), 3_000);
//! ```

#![warn(missing_docs)]

mod gate;
mod handle;
mod kernel;
mod proc;
mod queue;
pub mod rng;
mod signal;
mod sync;
mod time;

pub use handle::SimHandle;
pub use kernel::{ProcId, Report, SimError, Simulation};
pub use proc::Proc;
pub use queue::{default_queue_kind, set_default_queue_kind, QueueKind};
pub use rng::Pcg32;
pub use signal::{Signal, TimedWait, Wait};
pub use sync::{Mailbox, MailboxTx, Mutex, MutexGuard};
pub use time::{Dur, Time};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::Mutex;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn empty_simulation_completes() {
        let report = Simulation::new().run().unwrap();
        assert_eq!(report.end_time, Time::ZERO);
        assert_eq!(report.procs_spawned, 0);
    }

    #[test]
    fn advance_accumulates() {
        let sim = Simulation::new();
        let t = Arc::new(AtomicU64::new(0));
        let t2 = t.clone();
        sim.spawn("p", move |p| {
            p.advance(Dur::from_ns(100));
            p.advance(Dur::from_ns(250));
            t2.store(p.now().as_ns(), Ordering::SeqCst);
        });
        let report = sim.run().unwrap();
        assert_eq!(t.load(Ordering::SeqCst), 350);
        assert_eq!(report.end_time, Time::from_ns(350));
    }

    #[test]
    fn calls_fire_in_time_order_with_fifo_ties() {
        let sim = Simulation::new();
        let order = Arc::new(Mutex::new(Vec::new()));
        let h = sim.handle();
        for (i, d) in [(0u32, 50u64), (1, 20), (2, 20), (3, 0)] {
            let order = order.clone();
            h.call_after(Dur::from_ns(d), move |_| order.lock().push(i));
        }
        sim.run().unwrap();
        assert_eq!(*order.lock(), vec![3, 1, 2, 0]);
    }

    #[test]
    fn signal_before_wait_is_not_lost() {
        let sim = Simulation::new();
        let done = Arc::new(AtomicU64::new(0));
        let done2 = done.clone();
        sim.spawn("p", move |p| {
            let s = p.signal();
            let s2 = s.clone();
            // Notification fires while we are still running.
            s2.notify(&p.sim());
            p.wait(&s).expect_signaled();
            done2.store(p.now().as_ns() + 1, Ordering::SeqCst);
        });
        sim.run().unwrap();
        assert_eq!(done.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn signal_wakes_parked_process_at_notify_time() {
        let sim = Simulation::new();
        let woke_at = Arc::new(AtomicU64::new(0));
        let woke_at2 = woke_at.clone();
        let sig_slot: Arc<Mutex<Option<Signal>>> = Arc::new(Mutex::new(None));
        let sig_slot2 = sig_slot.clone();
        sim.spawn("waiter", move |p| {
            let s = p.signal();
            *sig_slot2.lock() = Some(s.clone());
            p.wait(&s).expect_signaled();
            woke_at2.store(p.now().as_ns(), Ordering::SeqCst);
        });
        let h = sim.handle();
        h.call_after(Dur::from_us(7), move |sim| {
            sig_slot.lock().as_ref().unwrap().notify(sim);
        });
        sim.run().unwrap();
        assert_eq!(woke_at.load(Ordering::SeqCst), 7_000);
    }

    #[test]
    fn wait_timeout_times_out_at_deadline() {
        let sim = Simulation::new();
        let out = Arc::new(AtomicU64::new(0));
        let out2 = out.clone();
        sim.spawn("p", move |p| {
            let s = p.signal();
            assert_eq!(p.wait_timeout(&s, Dur::from_us(5)), TimedWait::TimedOut);
            out2.store(p.now().as_ns(), Ordering::SeqCst);
        });
        sim.run().unwrap();
        assert_eq!(out.load(Ordering::SeqCst), 5_000);
    }

    #[test]
    fn wait_timeout_signal_wins_and_cancels_timer() {
        let sim = Simulation::new();
        let out = Arc::new(AtomicU64::new(0));
        let out2 = out.clone();
        let sig_slot: Arc<Mutex<Option<Signal>>> = Arc::new(Mutex::new(None));
        let sig_slot2 = sig_slot.clone();
        sim.spawn("p", move |p| {
            let s = p.signal();
            *sig_slot2.lock() = Some(s.clone());
            assert_eq!(p.wait_timeout(&s, Dur::from_us(100)), TimedWait::Signaled);
            // The cancelled timer must not cut this sleep short.
            p.advance(Dur::from_us(500));
            out2.store(p.now().as_ns(), Ordering::SeqCst);
        });
        let h = sim.handle();
        h.call_after(Dur::from_us(3), move |sim| {
            sig_slot.lock().as_ref().unwrap().notify(sim);
        });
        let report = sim.run().unwrap();
        assert_eq!(out.load(Ordering::SeqCst), 503_000);
        assert_eq!(report.end_time, Time::from_ns(503_000));
    }

    #[test]
    fn wait_timeout_latched_signal_returns_immediately() {
        let sim = Simulation::new();
        let out = Arc::new(AtomicU64::new(u64::MAX));
        let out2 = out.clone();
        sim.spawn("p", move |p| {
            let s = p.signal();
            s.notify(&p.sim());
            assert_eq!(p.wait_timeout(&s, Dur::from_us(9)), TimedWait::Signaled);
            out2.store(p.now().as_ns(), Ordering::SeqCst);
        });
        sim.run().unwrap();
        assert_eq!(out.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn wait_timeout_loop_keeps_sim_alive_until_signal() {
        // A watchdog-style loop: repeated timeouts keep the event queue
        // non-empty (no deadlock) until a very late notification arrives.
        let sim = Simulation::new();
        let ticks = Arc::new(AtomicU64::new(0));
        let ticks2 = ticks.clone();
        let sig_slot: Arc<Mutex<Option<Signal>>> = Arc::new(Mutex::new(None));
        let sig_slot2 = sig_slot.clone();
        sim.spawn("p", move |p| {
            let s = p.signal();
            *sig_slot2.lock() = Some(s.clone());
            loop {
                match p.wait_timeout(&s, Dur::from_us(10)) {
                    TimedWait::Signaled => break,
                    TimedWait::TimedOut => {
                        ticks2.fetch_add(1, Ordering::SeqCst);
                    }
                    TimedWait::Shutdown => panic!("unexpected shutdown"),
                }
            }
        });
        let h = sim.handle();
        h.call_after(Dur::from_us(55), move |sim| {
            sig_slot.lock().as_ref().unwrap().notify(sim);
        });
        sim.run().unwrap();
        assert_eq!(ticks.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn past_scheduled_event_cannot_move_time_backwards() {
        // Regression: `push_event` used to accept past timestamps in release
        // builds (debug_assert only), letting the dispatch loop rewind the
        // virtual clock. Now the event is clamped to `now` and counted.
        let sim = Simulation::new();
        let times = Arc::new(Mutex::new(Vec::new()));
        let h = sim.handle();
        let t2 = times.clone();
        h.call_after(Dur::from_us(5), move |s| {
            let t3 = t2.clone();
            // Attempt to schedule 4µs into the past.
            s.call_at(Time::from_ns(1_000), move |s2| {
                t3.lock().push(s2.now().as_ns());
            });
            let t4 = t2.clone();
            s.call_after(Dur::from_ns(10), move |s2| {
                t4.lock().push(s2.now().as_ns());
            });
        });
        let report = sim.run().unwrap();
        // The past event fired at now (5µs), not at 1µs, and later events
        // still see a monotone clock.
        assert_eq!(*times.lock(), vec![5_000, 5_010]);
        assert_eq!(report.sched_past, 1);
        assert_eq!(report.end_time, Time::from_ns(5_010));
    }

    #[test]
    fn stale_wakes_are_counted_separately() {
        // A wait_timeout whose signal lands at exactly the timer deadline:
        // the notify queues a second wake behind the timer wake, the process
        // returns `Signaled` and finishes, and the leftover wake pops as a
        // stale no-op. It must be counted in `stale_wakes`, not inflate
        // `wakes_executed` or the headline events/s.
        let sim = Simulation::new();
        let sig_slot: Arc<Mutex<Option<Signal>>> = Arc::new(Mutex::new(None));
        let ss = sig_slot.clone();
        let h = sim.handle();
        h.call_after(Dur::from_us(5), move |s| {
            ss.lock().as_ref().unwrap().notify(s);
        });
        let ss2 = sig_slot.clone();
        sim.spawn("p", move |p| {
            let s = p.signal();
            *ss2.lock() = Some(s.clone());
            assert_eq!(p.wait_timeout(&s, Dur::from_us(5)), TimedWait::Signaled);
        });
        let report = sim.run().unwrap();
        assert_eq!(report.stale_wakes, 1);
        assert_eq!(report.wakes_executed, 2); // spawn wake + timer wake
        assert_eq!(report.calls_executed, 1);
        assert_eq!(report.events_processed, 4);
    }

    #[test]
    fn daemons_shut_down_in_spawn_order() {
        let sim = Simulation::new();
        let order = Arc::new(Mutex::new(Vec::new()));
        for i in 0..3u32 {
            let o = order.clone();
            sim.spawn_daemon(&format!("d{i}"), move |p| {
                let s = p.signal();
                match p.wait(&s) {
                    Wait::Shutdown => o.lock().push(i),
                    Wait::Signaled => panic!("unexpected signal"),
                }
            });
        }
        sim.spawn("main", |p| p.advance(Dur::from_us(1)));
        sim.run().unwrap();
        assert_eq!(*order.lock(), vec![0, 1, 2]);
    }

    #[test]
    fn dropping_unrun_simulation_joins_threads() {
        // A simulation dropped without `run` must release the parked process
        // threads instead of leaking them.
        let sim = Simulation::new();
        sim.spawn("p", |p| p.advance(Dur::from_us(1)));
        drop(sim);
    }

    #[test]
    fn proc_panic_is_reported() {
        let sim = Simulation::new();
        sim.spawn("bad", |_p| panic!("boom"));
        match sim.run() {
            Err(SimError::ProcPanic { proc, message }) => {
                assert_eq!(proc, "bad");
                assert!(message.contains("boom"));
            }
            other => panic!("expected panic error, got {other:?}"),
        }
    }

    #[test]
    fn deadlock_is_detected() {
        let sim = Simulation::new();
        sim.spawn("stuck", |p| {
            let s = p.signal();
            p.wait(&s).expect_signaled();
        });
        match sim.run() {
            Err(SimError::Deadlock { parked }) => assert_eq!(parked, vec!["stuck".to_string()]),
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn daemons_do_not_block_completion() {
        let sim = Simulation::new();
        let observed = Arc::new(AtomicU64::new(0));
        let observed2 = observed.clone();
        sim.spawn_daemon("d", move |p| {
            let s = p.signal();
            match p.wait(&s) {
                Wait::Shutdown => observed2.store(1, Ordering::SeqCst),
                Wait::Signaled => panic!("unexpected signal"),
            }
        });
        sim.spawn("main", |p| p.advance(Dur::from_us(2)));
        let report = sim.run().unwrap();
        assert_eq!(report.end_time, Time::from_us_like(2));
        assert_eq!(observed.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn nested_spawn_runs_at_spawn_time() {
        let sim = Simulation::new();
        let child_start = Arc::new(AtomicU64::new(u64::MAX));
        let cs = child_start.clone();
        sim.spawn("parent", move |p| {
            p.advance(Dur::from_us(4));
            let cs = cs.clone();
            p.spawn("child", move |c| {
                cs.store(c.now().as_ns(), Ordering::SeqCst);
                c.advance(Dur::from_us(1));
            });
            p.advance(Dur::from_us(10));
        });
        sim.run().unwrap();
        assert_eq!(child_start.load(Ordering::SeqCst), 4_000);
    }

    #[test]
    fn event_limit_guards_runaway() {
        let sim = Simulation::new();
        sim.set_event_limit(100);
        sim.spawn("spin", |p| loop {
            p.advance(Dur::from_ns(1));
        });
        match sim.run() {
            Err(SimError::EventLimit { limit }) => assert_eq!(limit, 100),
            other => panic!("expected event limit, got {other:?}"),
        }
    }

    #[test]
    fn two_procs_interleave_deterministically() {
        // Run the identical two-process program twice; event traces must match.
        fn trace() -> Vec<(u64, u32)> {
            let sim = Simulation::new();
            let log = Arc::new(Mutex::new(Vec::new()));
            for id in 0..2u32 {
                let log = log.clone();
                sim.spawn(&format!("p{id}"), move |p| {
                    for i in 0..5u64 {
                        p.advance(Dur::from_ns(10 + id as u64 * 3 + i));
                        log.lock().push((p.now().as_ns(), id));
                    }
                });
            }
            sim.run().unwrap();
            Arc::try_unwrap(log).unwrap().into_inner()
        }
        assert_eq!(trace(), trace());
    }

    impl Time {
        fn from_us_like(us: u64) -> Time {
            Time::from_ns(us * 1000)
        }
    }
}
