//! One-slot thread handoff gates.
//!
//! A [`Gate`] replaces the per-process `mpsc` channel pair of the original
//! kernel: the owning thread blocks in [`Gate::wait`] and any other thread
//! hands it a [`Go`] command with [`Gate::wake`]. The command is a latch —
//! a wake delivered before the owner waits (or even before the owner thread
//! has started) is not lost, and `Shutdown` overrides a pending `Run`
//! during teardown, which is the only time two wakes can race.
//!
//! The point of the custom primitive is cost: a handoff is one atomic store
//! plus one `unpark`, where the old channel-based design paid a send *and*
//! a receive on two different channels (four mutex/condvar operations) per
//! dispatched wake.

use std::sync::atomic::{AtomicU32, Ordering};
use std::thread::Thread;

use crate::kernel::Go;
use crate::sync::Mutex;

const CMD_NONE: u32 = 0;
const CMD_RUN: u32 = 1;
const CMD_SHUTDOWN: u32 = 2;

/// A single-owner wakeup slot carrying a [`Go`] command.
pub(crate) struct Gate {
    cmd: AtomicU32,
    /// The owning thread, registered once when that thread starts. `wake`
    /// before registration just leaves the command latched.
    owner: Mutex<Option<Thread>>,
}

impl Gate {
    pub(crate) fn new() -> Gate {
        Gate {
            cmd: AtomicU32::new(CMD_NONE),
            owner: Mutex::new(None),
        }
    }

    /// Claim this gate for the calling thread. Must be called by the owner
    /// before its first [`Gate::wait`].
    pub(crate) fn register(&self) {
        *self.owner.lock() = Some(std::thread::current());
    }

    /// Block the owning thread until a command arrives.
    pub(crate) fn wait(&self) -> Go {
        loop {
            match self.cmd.swap(CMD_NONE, Ordering::AcqRel) {
                CMD_NONE => std::thread::park(),
                CMD_RUN => return Go::Run,
                _ => return Go::Shutdown,
            }
        }
    }

    /// Latch `go` and unpark the owner (if it has registered yet; if not,
    /// the latched command is consumed by its first `wait`).
    pub(crate) fn wake(&self, go: Go) {
        let cmd = match go {
            Go::Run => CMD_RUN,
            Go::Shutdown => CMD_SHUTDOWN,
        };
        self.cmd.store(cmd, Ordering::Release);
        let owner = self.owner.lock().clone();
        if let Some(t) = owner {
            t.unpark();
        }
    }
}
