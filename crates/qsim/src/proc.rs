//! [`Proc`] — the handle a simulated process uses to interact with virtual
//! time: advancing the clock, creating and waiting on signals, spawning
//! further processes.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::gate::Gate;
use crate::handle::SimHandle;
use crate::kernel::{drive, spawn_proc, Driven, Event, Go, ParkKind, ProcId, Shared};
use crate::signal::{Signal, SignalInner, TimedWait, Wait};
use crate::time::{Dur, Time};

/// Per-process handle. Not `Clone`: exactly one OS thread owns it.
pub struct Proc {
    pid: ProcId,
    shared: Arc<Shared>,
    gate: Arc<Gate>,
}

impl Proc {
    pub(crate) fn new(pid: ProcId, shared: Arc<Shared>, gate: Arc<Gate>) -> Self {
        Proc { pid, shared, gate }
    }

    /// This process's id.
    pub fn id(&self) -> ProcId {
        self.pid
    }

    /// A sharable handle for scheduling device callbacks.
    pub fn sim(&self) -> SimHandle {
        SimHandle::new(self.shared.clone())
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        Time::from_ns(self.shared.now_ns.load(Ordering::Acquire))
    }

    /// Model `d` of computation: the process gives up control and resumes
    /// once virtual time has advanced by `d`.
    pub fn advance(&self, d: Dur) {
        let target = {
            let mut st = self.shared.state.lock();
            let at = st.now + d;
            st.push_event(at, Event::Wake(self.pid));
            st.procs.get_mut(self.pid.index()).park = ParkKind::Timer;
            at
        };
        loop {
            match self.park() {
                Go::Run => {
                    let mut st = self.shared.state.lock();
                    if st.now >= target {
                        return;
                    }
                    // A stale wake (e.g. the leftover timer of an earlier
                    // `wait_timeout` that raced its signal): our own wake is
                    // still queued, so just park again until it arrives.
                    st.procs.get_mut(self.pid.index()).park = ParkKind::Timer;
                }
                // Forced shutdown while sleeping: unwind this thread. The
                // kernel treats the unwind as process completion during
                // teardown.
                Go::Shutdown => std::panic::panic_any(ShutdownUnwind),
            }
        }
    }

    /// Create a signal owned by this process.
    pub fn signal(&self) -> Signal {
        let mut st = self.shared.state.lock();
        let id = st.next_signal_id;
        st.next_signal_id += 1;
        Signal {
            inner: Arc::new(SignalInner {
                id,
                owner: self.pid,
                pending: AtomicBool::new(false),
            }),
        }
    }

    /// Block until `s` is (or already was) notified.
    pub fn wait(&self, s: &Signal) -> Wait {
        assert_eq!(
            s.inner.owner, self.pid,
            "a process may only wait on signals it owns"
        );
        loop {
            {
                let mut st = self.shared.state.lock();
                if s.inner
                    .pending
                    .swap(false, std::sync::atomic::Ordering::Relaxed)
                {
                    return Wait::Signaled;
                }
                if st.shutdown {
                    return Wait::Shutdown;
                }
                st.procs.get_mut(self.pid.index()).park = ParkKind::Signal(s.inner.id);
            }
            match self.park() {
                Go::Run => continue,
                Go::Shutdown => return Wait::Shutdown,
            }
        }
    }

    /// Block until `s` is notified or `timeout` of virtual time elapses,
    /// whichever happens first.
    ///
    /// Used by progress watchdogs: the queued timeout event keeps the kernel
    /// from declaring deadlock while the owner is blocked, and on
    /// [`TimedWait::TimedOut`] the caller gets control back to inspect why
    /// no progress happened. On early return (signal or shutdown) the queued
    /// timer event is cancelled so it cannot later wake the process
    /// spuriously.
    pub fn wait_timeout(&self, s: &Signal, timeout: Dur) -> TimedWait {
        assert_eq!(
            s.inner.owner, self.pid,
            "a process may only wait on signals it owns"
        );
        let key = {
            let mut st = self.shared.state.lock();
            if s.inner
                .pending
                .swap(false, std::sync::atomic::Ordering::Relaxed)
            {
                return TimedWait::Signaled;
            }
            if st.shutdown {
                return TimedWait::Shutdown;
            }
            let at = st.now + timeout;
            st.push_event(at, Event::Wake(self.pid))
        };
        loop {
            {
                let mut st = self.shared.state.lock();
                if s.inner
                    .pending
                    .swap(false, std::sync::atomic::Ordering::Relaxed)
                {
                    st.queue.cancel(key);
                    return TimedWait::Signaled;
                }
                if st.shutdown {
                    st.queue.cancel(key);
                    return TimedWait::Shutdown;
                }
                if !st.queue.contains(key) {
                    // Our timer fired and nothing else woke us up.
                    return TimedWait::TimedOut;
                }
                st.procs.get_mut(self.pid.index()).park = ParkKind::Signal(s.inner.id);
            }
            match self.park() {
                Go::Run => continue,
                Go::Shutdown => {
                    self.shared.state.lock().queue.cancel(key);
                    return TimedWait::Shutdown;
                }
            }
        }
    }

    /// Wait with a modelled cost added once the signal fires (e.g. the cost
    /// of detecting a host event word after it is written).
    pub fn wait_then(&self, s: &Signal, detect_cost: Dur) -> Wait {
        let w = self.wait(s);
        if w == Wait::Signaled && detect_cost > Dur::ZERO {
            self.advance(detect_cost);
        }
        w
    }

    /// Spawn a sibling (non-daemon) process that starts at the current time.
    pub fn spawn(&self, name: &str, f: impl FnOnce(Proc) + Send + 'static) -> ProcId {
        spawn_proc(&self.shared, name, false, f)
    }

    /// Spawn a daemon process (e.g. an asynchronous progress thread).
    pub fn spawn_daemon(&self, name: &str, f: impl FnOnce(Proc) + Send + 'static) -> ProcId {
        spawn_proc(&self.shared, name, true, f)
    }

    /// Schedule a device callback after `delay`.
    pub fn call_after(&self, delay: Dur, f: impl FnOnce(&SimHandle) + Send + 'static) {
        self.sim().call_after(delay, f);
    }

    /// Give up control: keep the driver token and dispatch events on this
    /// thread until either our own wake comes up (free resume, no context
    /// switch) or control transfers elsewhere and we block on our gate.
    fn park(&self) -> Go {
        match drive(&self.shared, Some(self.pid)) {
            Driven::Resume => Go::Run,
            Driven::Transferred => self.gate.wait(),
            Driven::Ended => Go::Shutdown,
        }
    }
}

/// Panic payload used to unwind a process thread during forced shutdown.
pub(crate) struct ShutdownUnwind;

impl std::fmt::Debug for Proc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Proc({})", self.pid)
    }
}
