//! Scheduler determinism: the same program must produce the same schedule —
//! across repeated runs, and across event-queue implementations (the
//! calendar queue vs. the reference `BTreeMap`). Equality is checked on
//! `(end_time, events_processed)` and on the kernel's per-event schedule
//! hash, which folds every dispatched `(time, kind, proc)` triple.

use qsim::{Dur, Pcg32, QueueKind, Report, SimError, Simulation, TimedWait, Wait};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A workload exercising every scheduling primitive: timed advances with
/// PRNG-jittered delays, signal ping-pong, watchdog-style `wait_timeout`
/// loops, nested spawns, device callbacks, and a daemon.
fn mixed_workload(sim: &Simulation) {
    // Signal ping-pong pairs with jittered compute.
    for pair in 0..3u64 {
        let a_sig: Arc<qsim::Mutex<Option<qsim::Signal>>> = Arc::new(qsim::Mutex::new(None));
        let b_sig: Arc<qsim::Mutex<Option<qsim::Signal>>> = Arc::new(qsim::Mutex::new(None));
        let (a2, b2) = (a_sig.clone(), b_sig.clone());
        sim.spawn(&format!("a{pair}"), move |p| {
            let mut rng = Pcg32::new(0x5EED + pair);
            let s = p.signal();
            *a2.lock() = Some(s.clone());
            for _ in 0..150 {
                p.advance(Dur::from_ns(100 + (rng.next_u32() % 700) as u64));
                loop {
                    if let Some(bs) = b2.lock().as_ref() {
                        bs.notify(&p.sim());
                        break;
                    }
                    p.advance(Dur::from_ns(50));
                }
                p.wait(&s).expect_signaled();
            }
        });
        let (a3, b3) = (a_sig, b_sig);
        sim.spawn(&format!("b{pair}"), move |p| {
            let mut rng = Pcg32::new(0xB0B + pair);
            let s = p.signal();
            *b3.lock() = Some(s.clone());
            for _ in 0..150 {
                p.wait(&s).expect_signaled();
                p.advance(Dur::from_ns(80 + (rng.next_u32() % 300) as u64));
                a3.lock().as_ref().unwrap().notify(&p.sim());
            }
        });
    }
    // A watchdog-style timeout loop ended by a late notification.
    let w_sig: Arc<qsim::Mutex<Option<qsim::Signal>>> = Arc::new(qsim::Mutex::new(None));
    let w2 = w_sig.clone();
    sim.spawn("watchdog", move |p| {
        let s = p.signal();
        *w2.lock() = Some(s.clone());
        loop {
            match p.wait_timeout(&s, Dur::from_us(10)) {
                TimedWait::Signaled => break,
                TimedWait::TimedOut => {}
                TimedWait::Shutdown => panic!("unexpected shutdown"),
            }
        }
    });
    let h = sim.handle();
    h.call_after(Dur::from_us(95), move |sim| {
        w_sig.lock().as_ref().unwrap().notify(sim);
    });
    // Nested spawns at staggered times, each with device callbacks.
    sim.spawn("spawner", |p| {
        for i in 0..5u64 {
            p.advance(Dur::from_us(2 * (i + 1)));
            p.spawn(&format!("child{i}"), move |c| {
                let done = Arc::new(AtomicU64::new(0));
                let d2 = done.clone();
                c.call_after(Dur::from_ns(300 + 17 * i), move |_| {
                    d2.store(1, Ordering::SeqCst);
                });
                c.advance(Dur::from_us(1));
                assert_eq!(done.load(Ordering::SeqCst), 1);
            });
        }
    });
    // A daemon parked until shutdown (a daemon must not keep timer events
    // queued, or the run would never drain the queue and complete).
    sim.spawn_daemon("daemon", |p| {
        let s = p.signal();
        match p.wait(&s) {
            Wait::Shutdown => {}
            Wait::Signaled => panic!("nobody notifies the daemon"),
        }
    });
}

fn run_workload(kind: QueueKind) -> Report {
    let sim = Simulation::with_queue(kind);
    mixed_workload(&sim);
    sim.run().unwrap()
}

fn fingerprint(r: &Report) -> (u64, u64, u64, u64, u64) {
    (
        r.end_time.as_ns(),
        r.events_processed,
        r.schedule_hash,
        r.wakes_executed,
        r.calls_executed,
    )
}

#[test]
fn repeated_runs_produce_identical_schedules() {
    let first = run_workload(QueueKind::Calendar);
    assert!(
        first.events_processed > 1500,
        "workload too small to trust: {} events",
        first.events_processed
    );
    for _ in 0..3 {
        let again = run_workload(QueueKind::Calendar);
        assert_eq!(fingerprint(&first), fingerprint(&again));
    }
}

#[test]
fn calendar_and_btree_queues_produce_identical_schedules() {
    let cal = run_workload(QueueKind::Calendar);
    let btree = run_workload(QueueKind::BTree);
    assert_eq!(
        fingerprint(&cal),
        fingerprint(&btree),
        "queue implementations diverged on the same program"
    );
    assert_eq!(cal.stale_wakes, btree.stale_wakes);
    assert_eq!(cal.sched_past, btree.sched_past);
}

/// A 256-rank NIC-offloaded allreduce on the full MPI stack: every
/// inter-hop transfer is a NIC-chained event (QDMA deposit → counted-event
/// fire → chained QDMA), so the schedule folds device callbacks, signal
/// wakeups, and per-rank progress threads at scale. The queue being swapped
/// underneath must not change a single dispatched triple.
fn nic_allreduce_run(kind: QueueKind) -> Report {
    use openmpi_core::{Placement, ReduceOp, StackConfig, Transports, Universe};
    let mut cfg = StackConfig::best();
    cfg.coll_nic_offload = true;
    let uni = Universe::new(
        elan4::NicConfig::default(),
        qsnet::FabricConfig {
            nodes: 256,
            ..Default::default()
        },
        cfg,
        Transports::default(),
    );
    let sim = Simulation::with_queue(kind);
    const N: usize = 256;
    const LANES: usize = 8;
    uni.launch_world(&sim, N, Placement::RoundRobin, move |mpi| {
        let w = mpi.world();
        let buf = mpi.alloc(LANES * 8);
        let mut bytes = Vec::with_capacity(LANES * 8);
        for _ in 0..LANES {
            bytes.extend_from_slice(&(mpi.rank() as u64 + 1).to_le_bytes());
        }
        mpi.write(&buf, 0, &bytes);
        mpi.allreduce(&w, ReduceOp::SumU64, &buf, LANES * 8);
        let out = mpi.read(&buf, 0, LANES * 8);
        let expect = (N as u64 * (N as u64 + 1)) / 2;
        for lane in 0..LANES {
            let v = u64::from_le_bytes(out[lane * 8..lane * 8 + 8].try_into().unwrap());
            assert_eq!(v, expect, "rank {} lane {lane} reduced wrong", mpi.rank());
        }
    });
    let report = sim.run().unwrap();
    assert!(
        uni.cluster.stats().event_writes > 0,
        "allreduce never touched the NIC event path — the cross-check \
         would not be exercising chained events"
    );
    report
}

#[test]
fn nic_offloaded_allreduce_schedules_identically_across_queues() {
    let cal = nic_allreduce_run(QueueKind::Calendar);
    assert!(
        cal.events_processed > 10_000,
        "256-rank allreduce too small to trust: {} events",
        cal.events_processed
    );
    let again = nic_allreduce_run(QueueKind::Calendar);
    assert_eq!(
        fingerprint(&cal),
        fingerprint(&again),
        "repeat run diverged on the NIC-offloaded collective"
    );
    let btree = nic_allreduce_run(QueueKind::BTree);
    assert_eq!(
        fingerprint(&cal),
        fingerprint(&btree),
        "queue implementations diverged on the NIC-offloaded collective"
    );
    assert_eq!(cal.stale_wakes, btree.stale_wakes);
    assert_eq!(cal.sched_past, btree.sched_past);
}

#[test]
fn deadlock_reports_all_parked_procs_under_new_dispatch() {
    let sim = Simulation::new();
    for i in 0..3u32 {
        sim.spawn(&format!("stuck{i}"), |p| {
            let s = p.signal();
            p.wait(&s).expect_signaled();
        });
    }
    sim.spawn("finishes", |p| p.advance(Dur::from_us(1)));
    match sim.run() {
        Err(SimError::Deadlock { parked }) => {
            assert_eq!(parked, vec!["stuck0", "stuck1", "stuck2"]);
        }
        other => panic!("expected deadlock, got {other:?}"),
    }
}

#[test]
fn daemon_shutdown_is_deterministic() {
    // Shutdown order (spawn order) must not depend on wall-clock timing.
    fn order() -> Vec<u32> {
        let sim = Simulation::new();
        let order = Arc::new(qsim::Mutex::new(Vec::new()));
        for i in 0..4u32 {
            let o = order.clone();
            sim.spawn_daemon(&format!("d{i}"), move |p| {
                let s = p.signal();
                match p.wait(&s) {
                    Wait::Shutdown => o.lock().push(i),
                    Wait::Signaled => panic!("unexpected signal"),
                }
            });
        }
        sim.spawn("main", |p| p.advance(Dur::from_us(3)));
        sim.run().unwrap();
        let v = order.lock().clone();
        v
    }
    let first = order();
    assert_eq!(first, vec![0, 1, 2, 3]);
    assert_eq!(first, order());
}
