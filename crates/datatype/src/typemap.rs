//! Datatype descriptions (typemaps) in the MPI sense: a tree of base types,
//! contiguous runs, strided vectors, indexed blocks, and structs, flattened
//! on demand into `(offset, len)` contiguous segments.

/// An MPI-style datatype.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Datatype {
    /// `len` contiguous bytes (covers all base types: we model layout, not
    /// language-level typing).
    Base {
        /// Element size in bytes.
        len: usize,
    },
    /// `count` copies of `inner`, laid out end to end (extent-spaced).
    Contiguous {
        /// Number of copies.
        count: usize,
        /// The repeated element type.
        inner: Box<Datatype>,
    },
    /// `count` blocks of `blocklen` copies of `inner`, block `i` starting at
    /// `i * stride * extent(inner)` — MPI_Type_vector.
    Vector {
        /// Number of blocks.
        count: usize,
        /// Elements per block.
        blocklen: usize,
        /// Block-to-block distance in elements.
        stride: usize,
        /// The element type.
        inner: Box<Datatype>,
    },
    /// Blocks at explicit displacements (in bytes): MPI_Type_indexed over a
    /// byte-granular inner type.
    Indexed {
        /// `(displacement_bytes, block_elements)`
        blocks: Vec<(usize, usize)>,
        /// The element type.
        inner: Box<Datatype>,
    },
    /// Fields at explicit byte displacements: MPI_Type_create_struct.
    Struct {
        /// `(displacement_bytes, field_type)`, non-overlapping.
        fields: Vec<(usize, Datatype)>,
    },
}

impl Datatype {
    /// One byte.
    pub fn u8() -> Datatype {
        Datatype::Base { len: 1 }
    }

    /// A 4-byte base type (int/float).
    pub fn u32() -> Datatype {
        Datatype::Base { len: 4 }
    }

    /// An 8-byte base type (long/double).
    pub fn f64() -> Datatype {
        Datatype::Base { len: 8 }
    }

    /// `len` contiguous bytes.
    pub fn bytes(len: usize) -> Datatype {
        Datatype::Base { len }
    }

    /// `count` copies of `inner`, end to end.
    pub fn contiguous(count: usize, inner: Datatype) -> Datatype {
        Datatype::Contiguous {
            count,
            inner: Box::new(inner),
        }
    }

    /// Strided blocks (MPI_Type_vector).
    ///
    /// # Panics
    /// If blocks would overlap (`stride < blocklen`).
    pub fn vector(count: usize, blocklen: usize, stride: usize, inner: Datatype) -> Datatype {
        assert!(stride >= blocklen, "overlapping vector blocks");
        Datatype::Vector {
            count,
            blocklen,
            stride,
            inner: Box::new(inner),
        }
    }

    /// Blocks at explicit displacements (MPI_Type_indexed).
    ///
    /// # Panics
    /// If blocks overlap.
    pub fn indexed(mut blocks: Vec<(usize, usize)>, inner: Datatype) -> Datatype {
        blocks.sort_by_key(|b| b.0);
        // Reject overlap: the pack/unpack inverse property needs it.
        let ext = inner.extent();
        for w in blocks.windows(2) {
            assert!(
                w[0].0 + w[0].1 * ext <= w[1].0,
                "overlapping indexed blocks"
            );
        }
        Datatype::Indexed {
            blocks,
            inner: Box::new(inner),
        }
    }

    /// Fields at explicit displacements (MPI_Type_create_struct).
    ///
    /// # Panics
    /// If fields overlap.
    pub fn strct(mut fields: Vec<(usize, Datatype)>) -> Datatype {
        fields.sort_by_key(|f| f.0);
        for w in fields.windows(2) {
            assert!(
                w[0].0 + w[0].1.extent() <= w[1].0,
                "overlapping struct fields"
            );
        }
        Datatype::Struct { fields }
    }

    /// Packed size in bytes of one element.
    pub fn size(&self) -> usize {
        match self {
            Datatype::Base { len } => *len,
            Datatype::Contiguous { count, inner } => count * inner.size(),
            Datatype::Vector {
                count,
                blocklen,
                inner,
                ..
            } => count * blocklen * inner.size(),
            Datatype::Indexed { blocks, inner } => {
                blocks.iter().map(|(_, n)| n * inner.size()).sum()
            }
            Datatype::Struct { fields } => fields.iter().map(|(_, t)| t.size()).sum(),
        }
    }

    /// Memory extent in bytes of one element (distance between consecutive
    /// elements in an array of this type).
    pub fn extent(&self) -> usize {
        match self {
            Datatype::Base { len } => *len,
            Datatype::Contiguous { count, inner } => count * inner.extent(),
            Datatype::Vector {
                count,
                blocklen,
                stride,
                inner,
            } => {
                if *count == 0 {
                    0
                } else {
                    ((count - 1) * stride + blocklen) * inner.extent()
                }
            }
            Datatype::Indexed { blocks, inner } => blocks
                .iter()
                .map(|(d, n)| d + n * inner.extent())
                .max()
                .unwrap_or(0),
            Datatype::Struct { fields } => fields
                .iter()
                .map(|(d, t)| d + t.extent())
                .max()
                .unwrap_or(0),
        }
    }

    /// True when the packed representation equals the memory representation.
    pub fn is_contiguous(&self) -> bool {
        self.size() == self.extent()
    }

    /// Append this element's segments, shifted by `base`, merging adjacent
    /// runs.
    fn collect_segments(&self, base: usize, out: &mut Vec<(usize, usize)>) {
        fn push(out: &mut Vec<(usize, usize)>, off: usize, len: usize) {
            if len == 0 {
                return;
            }
            if let Some(last) = out.last_mut() {
                if last.0 + last.1 == off {
                    last.1 += len;
                    return;
                }
            }
            out.push((off, len));
        }
        match self {
            Datatype::Base { len } => push(out, base, *len),
            Datatype::Contiguous { count, inner } => {
                let ext = inner.extent();
                for i in 0..*count {
                    inner.collect_segments(base + i * ext, out);
                }
            }
            Datatype::Vector {
                count,
                blocklen,
                stride,
                inner,
            } => {
                let ext = inner.extent();
                for i in 0..*count {
                    let block_base = base + i * stride * ext;
                    for j in 0..*blocklen {
                        inner.collect_segments(block_base + j * ext, out);
                    }
                }
            }
            Datatype::Indexed { blocks, inner } => {
                let ext = inner.extent();
                for (disp, n) in blocks {
                    for j in 0..*n {
                        inner.collect_segments(base + disp + j * ext, out);
                    }
                }
            }
            Datatype::Struct { fields } => {
                for (disp, t) in fields {
                    t.collect_segments(base + disp, out);
                }
            }
        }
    }

    /// Contiguous `(offset, len)` segments covering `count` elements.
    pub fn segments(&self, count: usize) -> SegmentIter<'_> {
        let mut segs = Vec::new();
        let ext = self.extent();
        for i in 0..count {
            self.collect_segments(i * ext, &mut segs);
        }
        SegmentIter {
            segs: segs.into_iter(),
            _marker: std::marker::PhantomData,
        }
    }
}

/// Iterator over `(offset, len)` contiguous segments.
pub struct SegmentIter<'a> {
    segs: std::vec::IntoIter<(usize, usize)>,
    _marker: std::marker::PhantomData<&'a ()>,
}

impl Iterator for SegmentIter<'_> {
    type Item = (usize, usize);
    fn next(&mut self) -> Option<(usize, usize)> {
        self.segs.next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_sizes() {
        assert_eq!(Datatype::u8().size(), 1);
        assert_eq!(Datatype::u32().size(), 4);
        assert_eq!(Datatype::f64().extent(), 8);
        assert!(Datatype::bytes(100).is_contiguous());
    }

    #[test]
    fn contiguous_of_vector() {
        let v = Datatype::vector(2, 1, 2, Datatype::u32()); // 2 ints every 2
        assert_eq!(v.size(), 8);
        assert_eq!(v.extent(), 12);
        assert!(!v.is_contiguous());
        let c = Datatype::contiguous(3, v);
        assert_eq!(c.size(), 24);
        assert_eq!(c.extent(), 36);
    }

    #[test]
    fn segment_merging() {
        // stride == blocklen means fully contiguous: must merge to 1 segment.
        let v = Datatype::vector(4, 2, 2, Datatype::u8());
        let segs: Vec<_> = v.segments(1).collect();
        assert_eq!(segs, vec![(0, 8)]);
        assert!(v.is_contiguous());
    }

    #[test]
    fn vector_segments() {
        let v = Datatype::vector(3, 2, 4, Datatype::u8());
        let segs: Vec<_> = v.segments(1).collect();
        assert_eq!(segs, vec![(0, 2), (4, 2), (8, 2)]);
        // Two elements: the second starts at extent = 2*4+2 = 10, so its
        // first block (10,2) merges with the first element's tail (8,2).
        let segs2: Vec<_> = v.segments(2).collect();
        assert_eq!(segs2.len(), 5);
        assert_eq!(segs2[2], (8, 4));
        assert_eq!(segs2[3], (14, 2));
    }

    #[test]
    fn struct_layout() {
        let s = Datatype::strct(vec![
            (0, Datatype::u32()),
            (8, Datatype::f64()),
            (16, Datatype::bytes(3)),
        ]);
        assert_eq!(s.size(), 15);
        assert_eq!(s.extent(), 19);
        let segs: Vec<_> = s.segments(1).collect();
        assert_eq!(segs, vec![(0, 4), (8, 11)]); // f64 at 8 merges with bytes at 16
    }

    #[test]
    fn segments_cover_size_exactly() {
        let t = Datatype::indexed(vec![(1, 2), (8, 3)], Datatype::u8());
        let total: usize = t.segments(5).map(|(_, l)| l).sum();
        assert_eq!(total, t.size() * 5);
    }

    #[test]
    #[should_panic(expected = "overlapping indexed blocks")]
    fn overlapping_indexed_rejected() {
        Datatype::indexed(vec![(0, 4), (2, 2)], Datatype::u8());
    }

    #[test]
    #[should_panic(expected = "overlapping vector blocks")]
    fn overlapping_vector_rejected() {
        Datatype::vector(2, 3, 2, Datatype::u8());
    }
}
