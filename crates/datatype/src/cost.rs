//! Virtual-time cost model for the copy paths.
//!
//! The paper's §6.1 measures the datatype component at ~0.4 µs per request
//! over plain `memcpy` (the "DTP" curves in Fig. 7): the convertor
//! initializes a copy engine per request and walks typemap segments. The
//! transports charge these costs when staging data.

use qsim::Dur;

use crate::Convertor;

/// Host copy-cost parameters.
#[derive(Clone, Debug)]
pub struct CopyModel {
    /// One-time convertor/copy-engine initialization per request.
    pub convertor_setup: Dur,
    /// Per contiguous segment walked by the convertor.
    pub per_segment: Dur,
    /// Host copy bandwidth, bytes per microsecond.
    pub bytes_per_us: u64,
}

impl Default for CopyModel {
    fn default() -> Self {
        CopyModel {
            convertor_setup: Dur::from_ns(400),
            per_segment: Dur::from_ns(20),
            bytes_per_us: 2850,
        }
    }
}

impl CopyModel {
    /// Plain `memcpy` of `len` bytes (the fast path the paper substitutes
    /// for the datatype engine when measuring transport overheads).
    pub fn memcpy(&self, len: usize) -> Dur {
        Dur::for_bytes(len, self.bytes_per_us)
    }

    /// Cost of packing/unpacking `len` bytes out of `conv` through the
    /// convertor.
    pub fn convertor(&self, conv: &Convertor, len: usize) -> Dur {
        self.convertor_setup + self.per_segment * conv.segment_count() as u64 + self.memcpy(len)
    }

    /// Cost for whichever path `use_convertor` selects.
    pub fn copy_cost(&self, conv: &Convertor, len: usize, use_convertor: bool) -> Dur {
        if use_convertor {
            self.convertor(conv, len)
        } else {
            self.memcpy(len)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Datatype;

    #[test]
    fn convertor_costs_more_than_memcpy() {
        let m = CopyModel::default();
        let c = Convertor::new(Datatype::bytes(1024), 1);
        let plain = m.memcpy(1024);
        let conv = m.convertor(&c, 1024);
        let delta = conv - plain;
        // ~0.4us engine setup + 1 segment.
        assert_eq!(delta.as_ns(), 420);
    }

    #[test]
    fn segmented_types_pay_per_segment() {
        let m = CopyModel::default();
        let v = Convertor::new(Datatype::vector(10, 1, 2, Datatype::u8()), 1);
        let c = Convertor::new(Datatype::bytes(10), 1);
        assert!(m.convertor(&v, 10) > m.convertor(&c, 10));
    }

    #[test]
    fn zero_length_copy_costs_setup_only() {
        let m = CopyModel::default();
        let c = Convertor::new(Datatype::bytes(0), 0);
        assert_eq!(m.memcpy(0), Dur::ZERO);
        assert_eq!(m.convertor(&c, 0), m.convertor_setup);
    }
}
