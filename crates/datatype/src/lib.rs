//! # ompi-datatype — MPI datatype engine
//!
//! Open MPI ships a datatype component that packs and unpacks arbitrarily
//! structured user data through a *convertor* (a small copy engine set up per
//! request). The paper measures that engine's cost at about 0.4 µs per
//! request versus a plain `memcpy` (§6.1, the "DTP" series in Fig. 7).
//!
//! This crate reproduces both halves: a real typemap/pack/unpack engine that
//! moves actual bytes (so correctness is testable), and a cost model
//! ([`CopyModel`]) that the transport layers use to charge virtual time for
//! either the convertor path or the memcpy fast path.

#![warn(missing_docs)]

mod cost;
mod typemap;

pub use cost::CopyModel;
pub use typemap::{Datatype, SegmentIter};

/// A pack/unpack engine bound to `(datatype, count)` — Open MPI's convertor.
///
/// The convertor walks the typemap's contiguous segments; for contiguous
/// types it degenerates to a single segment (which is why the memcpy fast
/// path exists at all).
#[derive(Clone, Debug)]
pub struct Convertor {
    dtype: Datatype,
    count: usize,
}

impl Convertor {
    /// Bind a convertor to `count` elements of `dtype`.
    pub fn new(dtype: Datatype, count: usize) -> Self {
        Convertor { dtype, count }
    }

    /// The element type.
    pub fn datatype(&self) -> &Datatype {
        &self.dtype
    }

    /// The element count.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Total packed bytes this convertor produces.
    pub fn packed_len(&self) -> usize {
        self.dtype.size() * self.count
    }

    /// Memory footprint (extent * count) of the unpacked representation.
    pub fn span(&self) -> usize {
        self.dtype.extent() * self.count
    }

    /// True when packing is the identity (single contiguous segment).
    pub fn is_contiguous(&self) -> bool {
        self.dtype.is_contiguous()
    }

    /// Gather `src` (one unpacked region of at least [`Convertor::span`]
    /// bytes) into a packed byte vector.
    pub fn pack(&self, src: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.packed_len());
        for (off, len) in self.segments() {
            out.extend_from_slice(&src[off..off + len]);
        }
        out
    }

    /// Pack only `[skip, skip+len)` of the packed stream — used when a
    /// message is fragmented across transports.
    pub fn pack_range(&self, src: &[u8], skip: usize, len: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(len);
        let mut pos = 0usize;
        for (off, seg_len) in self.segments() {
            let seg_start = pos;
            let seg_end = pos + seg_len;
            pos = seg_end;
            if seg_end <= skip {
                continue;
            }
            if seg_start >= skip + len {
                break;
            }
            let from = skip.max(seg_start) - seg_start;
            let to = (skip + len).min(seg_end) - seg_start;
            out.extend_from_slice(&src[off + from..off + to]);
        }
        out
    }

    /// Scatter a packed stream back into `dst`.
    ///
    /// # Panics
    /// If `packed` is longer than the convertor's packed length.
    pub fn unpack(&self, packed: &[u8], dst: &mut [u8]) {
        self.unpack_range(packed, 0, dst);
    }

    /// Scatter `packed`, which begins at packed-stream offset `skip`.
    pub fn unpack_range(&self, packed: &[u8], skip: usize, dst: &mut [u8]) {
        assert!(
            skip + packed.len() <= self.packed_len(),
            "unpack beyond the packed stream"
        );
        let mut pos = 0usize;
        let mut consumed = 0usize;
        for (off, seg_len) in self.segments() {
            if consumed == packed.len() {
                break;
            }
            let seg_start = pos;
            let seg_end = pos + seg_len;
            pos = seg_end;
            if seg_end <= skip {
                continue;
            }
            let from = skip.max(seg_start) - seg_start;
            let avail = packed.len() - consumed;
            let take = (seg_len - from).min(avail);
            dst[off + from..off + from + take].copy_from_slice(&packed[consumed..consumed + take]);
            consumed += take;
        }
        assert_eq!(consumed, packed.len(), "packed bytes did not fit typemap");
    }

    /// Iterate `(offset, len)` contiguous segments over the whole count.
    pub fn segments(&self) -> SegmentIter<'_> {
        self.dtype.segments(self.count)
    }

    /// Number of contiguous segments (drives the per-segment cost).
    pub fn segment_count(&self) -> usize {
        self.segments().count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    #[cfg(feature = "proptest")]
    use proptest::prelude::*;

    fn pattern(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i * 31 % 251) as u8).collect()
    }

    #[test]
    fn contiguous_pack_is_identity() {
        let c = Convertor::new(Datatype::bytes(64), 4);
        assert!(c.is_contiguous());
        assert_eq!(c.packed_len(), 256);
        let src = pattern(256);
        assert_eq!(c.pack(&src), src);
    }

    #[test]
    fn vector_packs_strided_columns() {
        // 4 blocks of 2 bytes every 5 bytes.
        let v = Datatype::vector(4, 2, 5, Datatype::u8());
        let c = Convertor::new(v, 1);
        assert_eq!(c.packed_len(), 8);
        assert_eq!(c.span(), 3 * 5 + 2);
        let src = pattern(c.span());
        let packed = c.pack(&src);
        assert_eq!(
            packed,
            vec![src[0], src[1], src[5], src[6], src[10], src[11], src[15], src[16]]
        );
    }

    #[test]
    fn unpack_inverts_pack() {
        let t = Datatype::strct(vec![
            (0, Datatype::vector(3, 4, 8, Datatype::u8())),
            (32, Datatype::bytes(10)),
        ]);
        let c = Convertor::new(t, 3);
        let src = pattern(c.span());
        let packed = c.pack(&src);
        assert_eq!(packed.len(), c.packed_len());
        let mut dst = vec![0u8; c.span()];
        c.unpack(&packed, &mut dst);
        // Every byte covered by the typemap must match; others stay zero.
        for (off, len) in c.segments() {
            assert_eq!(&dst[off..off + len], &src[off..off + len]);
        }
    }

    #[test]
    fn pack_range_matches_full_pack_slices() {
        let t = Datatype::vector(5, 3, 7, Datatype::u8());
        let c = Convertor::new(t, 2);
        let src = pattern(c.span());
        let full = c.pack(&src);
        for skip in [0usize, 1, 3, 14, 29] {
            for len in [0usize, 1, 2, 5, full.len() - skip] {
                if skip + len > full.len() {
                    continue;
                }
                assert_eq!(
                    c.pack_range(&src, skip, len),
                    &full[skip..skip + len],
                    "skip={skip} len={len}"
                );
            }
        }
    }

    #[test]
    fn unpack_range_reassembles_fragments() {
        let t = Datatype::indexed(vec![(0, 3), (10, 5), (20, 2)], Datatype::u8());
        let c = Convertor::new(t, 4);
        let src = pattern(c.span());
        let full = c.pack(&src);
        let mut dst = vec![0u8; c.span()];
        // Deliver in three fragments of uneven size.
        let cuts = [0, 7, 25, full.len()];
        for w in cuts.windows(2) {
            c.unpack_range(&full[w[0]..w[1]], w[0], &mut dst);
        }
        for (off, len) in c.segments() {
            assert_eq!(&dst[off..off + len], &src[off..off + len]);
        }
    }

    #[cfg(feature = "proptest")]
    proptest! {
        #[test]
        fn roundtrip_arbitrary_fragmentation(
            blocks in proptest::collection::vec((0usize..40, 1usize..9), 1..6),
            count in 1usize..5,
            cut in 1usize..64,
        ) {
            // Build an indexed type; normalize overlapping blocks by sorting
            // and spacing them out.
            let mut disp = 0usize;
            let blocks: Vec<(usize, usize)> = blocks
                .into_iter()
                .map(|(gap, len)| {
                    let d = disp + gap;
                    disp = d + len;
                    (d, len)
                })
                .collect();
            let t = Datatype::indexed(blocks, Datatype::u8());
            let c = Convertor::new(t, count);
            let src = pattern(c.span().max(1));
            let full = c.pack(&src);
            prop_assert_eq!(full.len(), c.packed_len());

            let mut dst = vec![0u8; c.span().max(1)];
            let mut pos = 0;
            while pos < full.len() {
                let take = cut.min(full.len() - pos);
                c.unpack_range(&full[pos..pos + take], pos, &mut dst);
                pos += take;
            }
            for (off, len) in c.segments() {
                prop_assert_eq!(&dst[off..off + len], &src[off..off + len]);
            }
        }
    }
}
