//! Conjugate gradient on a distributed 1-D Laplacian.
//!
//! Solves `A x = b` where `A = tridiag(-1, 2, -1)` of global size `n`,
//! block-distributed over the ranks. The matrix-vector product needs one
//! halo value from each neighbour per iteration; the dot products are
//! allreduces. Verified against a serial CG and against the residual
//! definition directly.

use openmpi_core::{Communicator, Mpi};

use crate::{dot, read_f64s, write_f64s};

/// Problem definition for the CG solve.
#[derive(Clone, Debug)]
pub struct CgConfig {
    /// Global unknowns.
    pub n: usize,
    /// Iteration cap.
    pub max_iters: usize,
    /// Convergence threshold on `r·r`.
    pub tol: f64,
}

impl Default for CgConfig {
    fn default() -> Self {
        CgConfig {
            n: 256,
            max_iters: 200,
            tol: 1e-10,
        }
    }
}

/// Outcome of a distributed CG solve on one rank.
pub struct CgResult {
    /// This rank's block of the solution.
    pub x: Vec<f64>,
    /// Iterations performed.
    pub iters: usize,
    /// Final squared residual norm.
    pub rr: f64,
}

fn block_of(n: usize, rank: usize, nranks: usize) -> (usize, usize) {
    let base = n / nranks;
    let extra = n % nranks;
    let mine = base + usize::from(rank < extra);
    let start = rank * base + rank.min(extra);
    (start, mine)
}

/// Distributed `y = A p` for the 1-D Laplacian, exchanging one halo value
/// with each neighbour.
fn matvec(mpi: &Mpi, comm: &Communicator, p: &[f64], halo: &HaloBufs) -> Vec<f64> {
    let me = comm.rank();
    let n = comm.size();
    let len = p.len();
    let mut left = 0.0;
    let mut right = 0.0;
    if len > 0 {
        if me > 0 {
            write_f64s(mpi, &halo.send_l, 0, &p[..1]);
            mpi.sendrecv(
                comm,
                me - 1,
                60,
                &halo.send_l,
                8,
                (me - 1) as i32,
                61,
                &halo.recv_l,
                8,
            );
            left = read_f64s(mpi, &halo.recv_l, 0, 1)[0];
        }
        if me < n - 1 {
            write_f64s(mpi, &halo.send_r, 0, &p[len - 1..]);
            mpi.sendrecv(
                comm,
                me + 1,
                61,
                &halo.send_r,
                8,
                (me + 1) as i32,
                60,
                &halo.recv_r,
                8,
            );
            right = read_f64s(mpi, &halo.recv_r, 0, 1)[0];
        }
    }
    let mut y = vec![0.0; len];
    for i in 0..len {
        let lo = if i == 0 { left } else { p[i - 1] };
        let hi = if i == len - 1 { right } else { p[i + 1] };
        y[i] = 2.0 * p[i] - lo - hi;
    }
    mpi.compute(qsim::Dur::from_ns(3 * len as u64));
    y
}

struct HaloBufs {
    send_l: elan4::HostBuf,
    recv_l: elan4::HostBuf,
    send_r: elan4::HostBuf,
    recv_r: elan4::HostBuf,
}

/// Distributed CG with `b` defined as `A * ones` (so the exact solution is
/// the all-ones vector).
pub fn run(mpi: &Mpi, comm: &Communicator, cfg: &CgConfig) -> CgResult {
    let me = comm.rank();
    let nranks = comm.size();
    let (_start, mine) = block_of(cfg.n, me, nranks);

    let halo = HaloBufs {
        send_l: mpi.alloc(8),
        recv_l: mpi.alloc(8),
        send_r: mpi.alloc(8),
        recv_r: mpi.alloc(8),
    };

    // b = A * ones.
    let ones = vec![1.0f64; mine];
    let b = matvec(mpi, comm, &ones, &halo);

    let mut x = vec![0.0f64; mine];
    let mut r = b.clone();
    let mut p = r.clone();
    let mut rr = dot(mpi, comm, &r, &r);
    let mut iters = 0;

    while iters < cfg.max_iters && rr > cfg.tol {
        let ap = matvec(mpi, comm, &p, &halo);
        let pap = dot(mpi, comm, &p, &ap);
        let alpha = rr / pap;
        for i in 0..mine {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        mpi.compute(qsim::Dur::from_ns(4 * mine as u64));
        let rr_new = dot(mpi, comm, &r, &r);
        let beta = rr_new / rr;
        for i in 0..mine {
            p[i] = r[i] + beta * p[i];
        }
        mpi.compute(qsim::Dur::from_ns(2 * mine as u64));
        rr = rr_new;
        iters += 1;
    }

    mpi.free(halo.send_l);
    mpi.free(halo.recv_l);
    mpi.free(halo.send_r);
    mpi.free(halo.recv_r);

    CgResult { x, iters, rr }
}

/// Serial CG on the same system, for verification.
pub fn serial_reference(cfg: &CgConfig) -> (Vec<f64>, usize) {
    let n = cfg.n;
    let matvec = |p: &[f64]| -> Vec<f64> {
        let mut y = vec![0.0; n];
        for i in 0..n {
            let lo = if i == 0 { 0.0 } else { p[i - 1] };
            let hi = if i == n - 1 { 0.0 } else { p[i + 1] };
            y[i] = 2.0 * p[i] - lo - hi;
        }
        y
    };
    let b = matvec(&vec![1.0; n]);
    let mut x = vec![0.0; n];
    let mut r = b;
    let mut p = r.clone();
    let mut rr: f64 = r.iter().map(|v| v * v).sum();
    let mut iters = 0;
    while iters < cfg.max_iters && rr > cfg.tol {
        let ap = matvec(&p);
        let pap: f64 = p.iter().zip(&ap).map(|(a, c)| a * c).sum();
        let alpha = rr / pap;
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        let rr_new: f64 = r.iter().map(|v| v * v).sum();
        let beta = rr_new / rr;
        for i in 0..n {
            p[i] = r[i] + beta * p[i];
        }
        rr = rr_new;
        iters += 1;
    }
    (x, iters)
}

#[cfg(test)]
#[allow(clippy::type_complexity)]
mod tests {
    use super::*;
    use openmpi_core::{Placement, StackConfig, Universe};
    use qsim::Mutex;
    use std::sync::Arc;

    #[test]
    fn serial_cg_solves_to_ones() {
        let cfg = CgConfig::default();
        let (x, iters) = serial_reference(&cfg);
        assert!(iters < cfg.max_iters, "did not converge");
        for v in x {
            assert!((v - 1.0).abs() < 1e-4, "solution component {v}");
        }
    }

    #[test]
    fn distributed_cg_converges_to_ones_on_4_ranks() {
        let cfg = CgConfig::default();
        let sol: Arc<Mutex<Vec<(usize, Vec<f64>)>>> = Arc::new(Mutex::new(Vec::new()));
        let s2 = sol.clone();
        let cfg2 = cfg.clone();
        let uni = Universe::paper_testbed(StackConfig::best());
        uni.run_world(4, Placement::RoundRobin, move |mpi| {
            let w = mpi.world();
            let result = run(&mpi, &w, &cfg2);
            assert!(
                result.rr <= cfg2.tol,
                "rank {} rr={}",
                mpi.rank(),
                result.rr
            );
            s2.lock().push((mpi.rank(), result.x));
        });
        let mut parts = Arc::try_unwrap(sol).unwrap().into_inner();
        parts.sort_by_key(|(r, _)| *r);
        let x: Vec<f64> = parts.into_iter().flat_map(|(_, b)| b).collect();
        assert_eq!(x.len(), cfg.n);
        for v in x {
            assert!((v - 1.0).abs() < 1e-4, "component {v} != 1");
        }
    }

    #[test]
    fn distributed_matches_serial_iteration_count() {
        // Same arithmetic order for the dots (tree reduce) can differ by a
        // few ULPs, but the iteration count should match on this
        // well-conditioned problem.
        let cfg = CgConfig {
            n: 64,
            ..Default::default()
        };
        let (_x, serial_iters) = serial_reference(&cfg);
        let iters: Arc<Mutex<usize>> = Arc::new(Mutex::new(0));
        let i2 = iters.clone();
        let cfg2 = cfg.clone();
        let uni = Universe::paper_testbed(StackConfig::best());
        uni.run_world(2, Placement::RoundRobin, move |mpi| {
            let w = mpi.world();
            let result = run(&mpi, &w, &cfg2);
            if mpi.rank() == 0 {
                *i2.lock() = result.iters;
            }
        });
        let dist_iters = *iters.lock();
        assert!(
            dist_iters.abs_diff(serial_iters) <= 2,
            "distributed {dist_iters} vs serial {serial_iters}"
        );
    }
}
