//! EP — an embarrassingly parallel kernel in the NAS spirit: generate
//! pairs of pseudo-random deviates, count Gaussian pairs by annulus via
//! the Marsaglia polar method, and combine the per-rank tallies with a
//! single reduction. Communication is one `allreduce` at the end, so the
//! app is compute-bound — the scaling counterpoint to the latency-bound
//! CG and stencil kernels.

use openmpi_core::{Communicator, Mpi, ReduceOp};

use crate::{read_f64s, write_f64s};

/// Problem definition.
#[derive(Clone, Debug)]
pub struct EpConfig {
    /// Total pairs across all ranks.
    pub pairs: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for EpConfig {
    fn default() -> Self {
        EpConfig {
            pairs: 1 << 16,
            seed: 271_828,
        }
    }
}

/// Result: Gaussian-pair counts per annulus `[0,1), [1,2), ... [9,10)`
/// plus the accepted-pair total, identical on every rank.
pub struct EpResult {
    /// Counts by annulus of max(|x|, |y|).
    pub annuli: [u64; 10],
    /// Total accepted pairs.
    pub accepted: u64,
}

fn lcg(state: &mut u64) -> f64 {
    // 2^-63-scaled xorshift64* in (-1, 1).
    *state ^= *state >> 12;
    *state ^= *state << 25;
    *state ^= *state >> 27;
    let v = state.wrapping_mul(0x2545_F491_4F6C_DD1D);
    (v >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
}

/// Tally one rank's share of the pairs.
fn tally(cfg: &EpConfig, first: usize, count: usize) -> ([u64; 10], u64) {
    let mut annuli = [0u64; 10];
    let mut accepted = 0u64;
    for i in first..first + count {
        let mut s = cfg
            .seed
            .wrapping_add((i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let x1 = lcg(&mut s);
        let x2 = lcg(&mut s);
        let t = x1 * x1 + x2 * x2;
        if t <= 1.0 && t > 0.0 {
            accepted += 1;
            let f = (-2.0 * t.ln() / t).sqrt();
            let (g1, g2) = (x1 * f, x2 * f);
            let m = g1.abs().max(g2.abs());
            let bin = (m as usize).min(9);
            annuli[bin] += 1;
        }
    }
    (annuli, accepted)
}

/// Distributed run: each rank tallies its block, one allreduce combines.
pub fn run(mpi: &Mpi, comm: &Communicator, cfg: &EpConfig) -> EpResult {
    let n = comm.size();
    let me = comm.rank();
    let base = cfg.pairs / n;
    let extra = cfg.pairs % n;
    let mine = base + usize::from(me < extra);
    let first = me * base + me.min(extra);

    let (annuli, accepted) = tally(cfg, first, mine);
    // ~60 flops per pair.
    mpi.compute(qsim::Dur::from_ns(60 * mine as u64));

    // Pack counts as f64 (exactly representable well past these ranges).
    let mut vals = [0.0f64; 11];
    for (i, a) in annuli.iter().enumerate() {
        vals[i] = *a as f64;
    }
    vals[10] = accepted as f64;
    let buf = mpi.alloc(11 * 8);
    write_f64s(mpi, &buf, 0, &vals);
    mpi.allreduce(comm, ReduceOp::SumF64, &buf, 11 * 8);
    let out = read_f64s(mpi, &buf, 0, 11);
    mpi.free(buf);

    let mut annuli = [0u64; 10];
    for (i, a) in annuli.iter_mut().enumerate() {
        *a = out[i] as u64;
    }
    EpResult {
        annuli,
        accepted: out[10] as u64,
    }
}

/// Serial reference.
pub fn serial_reference(cfg: &EpConfig) -> EpResult {
    let (annuli, accepted) = tally(cfg, 0, cfg.pairs);
    EpResult { annuli, accepted }
}

#[cfg(test)]
#[allow(clippy::type_complexity)]
mod tests {
    use super::*;
    use openmpi_core::{Placement, StackConfig, Universe};
    use qsim::Mutex;
    use std::sync::Arc;

    #[test]
    fn distributed_tallies_match_serial() {
        let cfg = EpConfig::default();
        let reference = serial_reference(&cfg);
        for ranks in [2usize, 5, 8] {
            let got: Arc<Mutex<Vec<([u64; 10], u64)>>> = Arc::new(Mutex::new(Vec::new()));
            let g2 = got.clone();
            let cfg2 = cfg.clone();
            let uni = Universe::paper_testbed(StackConfig::best());
            uni.run_world(ranks, Placement::RoundRobin, move |mpi| {
                let w = mpi.world();
                let r = run(&mpi, &w, &cfg2);
                g2.lock().push((r.annuli, r.accepted));
            });
            let got = got.lock();
            assert_eq!(got.len(), ranks);
            for (annuli, accepted) in got.iter() {
                assert_eq!(*accepted, reference.accepted, "{ranks} ranks");
                assert_eq!(*annuli, reference.annuli, "{ranks} ranks");
            }
        }
    }

    #[test]
    fn acceptance_rate_near_pi_over_four() {
        let r = serial_reference(&EpConfig::default());
        let rate = r.accepted as f64 / (1 << 16) as f64;
        assert!(
            (rate - std::f64::consts::FRAC_PI_4).abs() < 0.02,
            "rate {rate}"
        );
    }
}
