//! 2-D five-point heat stencil with row-block decomposition.
//!
//! The grid is `rows x cols`, partitioned into contiguous row blocks, one
//! per rank. Each step exchanges one halo row with each neighbour
//! (`sendrecv`) and applies the Jacobi update; every `residual_every` steps
//! the global residual is reduced. Verified against [`serial_reference`].

use openmpi_core::{Communicator, Mpi, ReduceOp};

use crate::{read_f64s, write_f64s};

/// Problem definition.
#[derive(Clone, Debug)]
pub struct StencilConfig {
    /// Global grid rows.
    pub rows: usize,
    /// Global grid columns.
    pub cols: usize,
    /// Jacobi steps to run.
    pub steps: usize,
    /// Diffusion coefficient (stability needs alpha <= 0.25).
    pub alpha: f64,
    /// Initial hot cell (row, col, value).
    pub spike: (usize, usize, f64),
}

impl Default for StencilConfig {
    fn default() -> Self {
        StencilConfig {
            rows: 64,
            cols: 32,
            steps: 25,
            alpha: 0.2,
            spike: (31, 15, 100.0),
        }
    }
}

/// Result of a distributed run: this rank's block (without halos) plus the
/// final global residual.
pub struct StencilResult {
    /// This rank's rows, row-major, without halos.
    pub block: Vec<f64>,
    /// Rows owned by this rank.
    pub rows_here: usize,
    /// Final global residual.
    pub residual: f64,
}

/// Rows owned by `rank` (block distribution with remainder spread left).
pub fn rows_of(cfg: &StencilConfig, rank: usize, nranks: usize) -> (usize, usize) {
    let base = cfg.rows / nranks;
    let extra = cfg.rows % nranks;
    let mine = base + usize::from(rank < extra);
    let start = rank * base + rank.min(extra);
    (start, mine)
}

/// One Jacobi update over a block with halos already in place.
/// `u` has `rows_here + 2` rows; rows 0 and rows_here+1 are halos.
fn jacobi_step(
    u: &[f64],
    cols: usize,
    rows_here: usize,
    alpha: f64,
    top: bool,
    bottom: bool,
) -> Vec<f64> {
    let mut next = u.to_vec();
    for r in 1..=rows_here {
        for c in 0..cols {
            let idx = r * cols + c;
            // Global boundary rows/cols are Dirichlet (held fixed).
            if (top && r == 1) || (bottom && r == rows_here) || c == 0 || c == cols - 1 {
                continue;
            }
            let up = u[idx - cols];
            let down = u[idx + cols];
            let left = u[idx - 1];
            let right = u[idx + 1];
            next[idx] = u[idx] + alpha * (up + down + left + right - 4.0 * u[idx]);
        }
    }
    next
}

/// Distributed run on `comm`, starting from the configured spike.
pub fn run(mpi: &Mpi, comm: &Communicator, cfg: &StencilConfig) -> StencilResult {
    let me = comm.rank();
    let n = comm.size();
    let (start_row, rows_here) = rows_of(cfg, me, n);
    let cols = cfg.cols;
    let mut u = vec![0.0f64; (rows_here + 2) * cols];
    let (sr, sc, sv) = cfg.spike;
    if sr >= start_row && sr < start_row + rows_here {
        u[(sr - start_row + 1) * cols + sc] = sv;
    }
    run_inner(mpi, comm, cfg, u, rows_here, me, n)
}

/// Distributed run continuing from a previously computed interior block
/// (e.g. one restored from a checkpoint).
pub fn run_from(
    mpi: &Mpi,
    comm: &Communicator,
    cfg: &StencilConfig,
    interior: Vec<f64>,
) -> StencilResult {
    let me = comm.rank();
    let n = comm.size();
    let (_start_row, rows_here) = rows_of(cfg, me, n);
    let cols = cfg.cols;
    assert_eq!(interior.len(), rows_here * cols, "restored block shape");
    let mut u = vec![0.0f64; (rows_here + 2) * cols];
    u[cols..(rows_here + 1) * cols].copy_from_slice(&interior);
    run_inner(mpi, comm, cfg, u, rows_here, me, n)
}

fn run_inner(
    mpi: &Mpi,
    comm: &Communicator,
    cfg: &StencilConfig,
    mut u: Vec<f64>,
    rows_here: usize,
    me: usize,
    n: usize,
) -> StencilResult {
    let cols = cfg.cols;

    let row_bytes = cols * 8;
    let send_up = mpi.alloc(row_bytes);
    let recv_up = mpi.alloc(row_bytes);
    let send_dn = mpi.alloc(row_bytes);
    let recv_dn = mpi.alloc(row_bytes);
    let res_buf = mpi.alloc(8);

    let mut residual = f64::MAX;
    for _ in 0..cfg.steps {
        // Halo exchange with the neighbours.
        if me > 0 {
            write_f64s(mpi, &send_up, 0, &u[cols..2 * cols]);
            mpi.sendrecv(
                comm,
                me - 1,
                50,
                &send_up,
                row_bytes,
                (me - 1) as i32,
                51,
                &recv_up,
                row_bytes,
            );
            u[..cols].copy_from_slice(&read_f64s(mpi, &recv_up, 0, cols));
        }
        if me < n - 1 {
            write_f64s(
                mpi,
                &send_dn,
                0,
                &u[rows_here * cols..(rows_here + 1) * cols],
            );
            mpi.sendrecv(
                comm,
                me + 1,
                51,
                &send_dn,
                row_bytes,
                (me + 1) as i32,
                50,
                &recv_dn,
                row_bytes,
            );
            u[(rows_here + 1) * cols..].copy_from_slice(&read_f64s(mpi, &recv_dn, 0, cols));
        }

        let next = jacobi_step(&u, cols, rows_here, cfg.alpha, me == 0, me == n - 1);
        // 6 flops per interior cell.
        mpi.compute(qsim::Dur::from_ns(6 * (rows_here * cols) as u64));
        let local_res: f64 = next
            .iter()
            .zip(&u)
            .skip(cols)
            .take(rows_here * cols)
            .map(|(a, b)| (a - b).abs())
            .sum();
        u = next;

        write_f64s(mpi, &res_buf, 0, &[local_res]);
        mpi.allreduce(comm, ReduceOp::SumF64, &res_buf, 8);
        residual = read_f64s(mpi, &res_buf, 0, 1)[0];
    }

    mpi.free(send_up);
    mpi.free(recv_up);
    mpi.free(send_dn);
    mpi.free(recv_dn);
    mpi.free(res_buf);

    StencilResult {
        block: u[cols..(rows_here + 1) * cols].to_vec(),
        rows_here,
        residual,
    }
}

/// Serial reference: the whole grid in one piece.
pub fn serial_reference(cfg: &StencilConfig) -> Vec<f64> {
    let cols = cfg.cols;
    // Whole grid plus phantom halos so the same kernel applies.
    let mut u = vec![0.0f64; (cfg.rows + 2) * cols];
    u[(cfg.spike.0 + 1) * cols + cfg.spike.1] = cfg.spike.2;
    for _ in 0..cfg.steps {
        u = jacobi_step(&u, cols, cfg.rows, cfg.alpha, true, true);
    }
    u[cols..(cfg.rows + 1) * cols].to_vec()
}

#[cfg(test)]
#[allow(clippy::type_complexity)]
mod tests {
    use super::*;
    use openmpi_core::{Placement, StackConfig, Universe};
    use qsim::Mutex;
    use std::sync::Arc;

    #[test]
    fn rows_partition_covers_grid() {
        let cfg = StencilConfig {
            rows: 67,
            ..Default::default()
        };
        let mut covered = 0;
        let mut next_start = 0;
        for r in 0..5 {
            let (start, mine) = rows_of(&cfg, r, 5);
            assert_eq!(start, next_start);
            next_start += mine;
            covered += mine;
        }
        assert_eq!(covered, 67);
    }

    #[test]
    fn distributed_matches_serial_on_4_ranks() {
        let cfg = StencilConfig::default();
        let reference = serial_reference(&cfg);
        let blocks: Arc<Mutex<Vec<(usize, Vec<f64>)>>> = Arc::new(Mutex::new(Vec::new()));
        let b2 = blocks.clone();
        let cfg2 = cfg.clone();
        let uni = Universe::paper_testbed(StackConfig::best());
        uni.run_world(4, Placement::RoundRobin, move |mpi| {
            let w = mpi.world();
            let result = run(&mpi, &w, &cfg2);
            b2.lock().push((mpi.rank(), result.block));
        });
        let mut blocks = Arc::try_unwrap(blocks).unwrap().into_inner();
        blocks.sort_by_key(|(r, _)| *r);
        let assembled: Vec<f64> = blocks.into_iter().flat_map(|(_, b)| b).collect();
        assert_eq!(assembled.len(), reference.len());
        for (i, (a, b)) in assembled.iter().zip(&reference).enumerate() {
            assert!(
                (a - b).abs() < 1e-12,
                "cell {i}: distributed {a} vs serial {b}"
            );
        }
    }

    #[test]
    fn residual_decreases() {
        let cfg = StencilConfig::default();
        let res: Arc<Mutex<f64>> = Arc::new(Mutex::new(f64::MAX));
        let r2 = res.clone();
        let uni = Universe::paper_testbed(StackConfig::best());
        uni.run_world(2, Placement::RoundRobin, move |mpi| {
            let w = mpi.world();
            let result = run(&mpi, &w, &cfg);
            if mpi.rank() == 0 {
                *r2.lock() = result.residual;
            }
        });
        let final_res = *res.lock();
        assert!(final_res.is_finite());
        assert!(final_res < 100.0, "diffusion should spread the spike");
    }
}
