//! 2-D heat stencil with a 2-D processor grid: row halos are contiguous,
//! column halos are *strided* — sent directly from the field with an
//! `MPI_Type_vector`-style datatype, exercising the datatype engine's
//! pack/unpack path through the rendezvous protocol exactly the way real
//! halo exchanges do.

use ompi_datatype::{Convertor, Datatype};
use openmpi_core::{Communicator, Mpi, ReduceOp};

use crate::{read_f64s, write_f64s};

/// Problem definition: a `rows x cols` grid on a `pr x pc` processor grid.
#[derive(Clone, Debug)]
pub struct Stencil2dConfig {
    /// Grid rows (must divide by the process-grid rows).
    pub rows: usize,
    /// Grid columns (must divide by the process-grid columns).
    pub cols: usize,
    /// Process-grid rows.
    pub pr: usize,
    /// Process-grid columns.
    pub pc: usize,
    /// Jacobi steps.
    pub steps: usize,
    /// Diffusion coefficient.
    pub alpha: f64,
}

impl Default for Stencil2dConfig {
    fn default() -> Self {
        Stencil2dConfig {
            rows: 32,
            cols: 32,
            pr: 2,
            pc: 2,
            steps: 15,
            alpha: 0.2,
        }
    }
}

/// This rank's position in the process grid.
fn grid_pos(rank: usize, pc: usize) -> (usize, usize) {
    (rank / pc, rank % pc)
}

/// One Jacobi sweep over the interior of a halo-padded block.
fn sweep(
    u: &[f64],
    lr: usize,
    lc: usize,
    alpha: f64,
    fixed: impl Fn(usize, usize) -> bool,
) -> Vec<f64> {
    let w = lc + 2;
    let mut next = u.to_vec();
    for r in 1..=lr {
        for c in 1..=lc {
            if fixed(r, c) {
                continue;
            }
            let i = r * w + c;
            next[i] = u[i] + alpha * (u[i - w] + u[i + w] + u[i - 1] + u[i + 1] - 4.0 * u[i]);
        }
    }
    next
}

/// Distributed 2-D run; returns this rank's interior block (row-major).
pub fn run(mpi: &Mpi, comm: &Communicator, cfg: &Stencil2dConfig) -> Vec<f64> {
    assert_eq!(comm.size(), cfg.pr * cfg.pc, "process grid mismatch");
    assert_eq!(cfg.rows % cfg.pr, 0, "rows must divide evenly");
    assert_eq!(cfg.cols % cfg.pc, 0, "cols must divide evenly");
    let lr = cfg.rows / cfg.pr; // local rows
    let lc = cfg.cols / cfg.pc; // local cols
    let (gr, gc) = grid_pos(comm.rank(), cfg.pc);
    let w = lc + 2; // padded width

    // Field lives in simulated memory so halo sends can use datatypes on it.
    let field = mpi.alloc((lr + 2) * w * 8);
    let mut u = vec![0.0f64; (lr + 2) * w];
    // Heat the global top edge.
    if gr == 0 {
        for c in 1..=lc {
            u[w + c] = 100.0;
        }
    }
    write_f64s(mpi, &field, 0, &u);

    // Column-halo datatype: `lr` doubles with a stride of `w` doubles.
    let col_type = || Datatype::vector(lr, 8, w * 8, Datatype::u8());
    // Row-halo: contiguous `lc` doubles.
    let up = gr.checked_sub(1).map(|r| r * cfg.pc + gc);
    let down = (gr + 1 < cfg.pr).then(|| (gr + 1) * cfg.pc + gc);
    let left = gc.checked_sub(1).map(|c| gr * cfg.pc + c);
    let right = (gc + 1 < cfg.pc).then(|| gr * cfg.pc + gc + 1);

    let res_buf = mpi.alloc(8);
    for _step in 0..cfg.steps {
        write_f64s(mpi, &field, 0, &u);
        let mut reqs = Vec::new();
        // Row halos (contiguous slices of the padded field).
        let row_at = |r: usize| field.slice((r * w + 1) * 8, lc * 8);
        if let Some(peer) = up {
            reqs.push(mpi.isend(comm, peer, 20, &row_at(1), lc * 8));
            reqs.push(mpi.irecv(comm, peer as i32, 21, &row_at(0), lc * 8));
        }
        if let Some(peer) = down {
            reqs.push(mpi.isend(comm, peer, 21, &row_at(lr), lc * 8));
            reqs.push(mpi.irecv(comm, peer as i32, 20, &row_at(lr + 1), lc * 8));
        }
        // Column halos: strided vector straight out of / into the field.
        let col_at = |c: usize| field.slice((w + c) * 8, ((lr - 1) * w + 1) * 8);
        if let Some(peer) = left {
            reqs.push(mpi.isend_typed(comm, peer, 22, &col_at(1), Convertor::new(col_type(), 1)));
            reqs.push(mpi.irecv_typed(
                comm,
                peer as i32,
                23,
                &col_at(0),
                Convertor::new(col_type(), 1),
            ));
        }
        if let Some(peer) = right {
            reqs.push(mpi.isend_typed(comm, peer, 23, &col_at(lc), Convertor::new(col_type(), 1)));
            reqs.push(mpi.irecv_typed(
                comm,
                peer as i32,
                22,
                &col_at(lc + 1),
                Convertor::new(col_type(), 1),
            ));
        }
        mpi.waitall(reqs);
        u = read_f64s(mpi, &field, 0, (lr + 2) * w);

        // Global boundary cells are Dirichlet-fixed.
        let next = sweep(&u, lr, lc, cfg.alpha, |r, c| {
            (gr == 0 && r == 1)
                || (gr == cfg.pr - 1 && r == lr)
                || (gc == 0 && c == 1)
                || (gc == cfg.pc - 1 && c == lc)
        });
        mpi.compute(qsim::Dur::from_ns(6 * (lr * lc) as u64));
        let local_res: f64 = next.iter().zip(&u).map(|(a, b)| (a - b).abs()).sum();
        u = next;
        write_f64s(mpi, &res_buf, 0, &[local_res]);
        mpi.allreduce(comm, ReduceOp::SumF64, &res_buf, 8);
    }
    mpi.free(res_buf);
    mpi.free(field);

    // Strip the halos.
    let mut out = Vec::with_capacity(lr * lc);
    for r in 1..=lr {
        out.extend_from_slice(&u[r * w + 1..r * w + 1 + lc]);
    }
    out
}

/// Serial reference on the full grid.
pub fn serial_reference(cfg: &Stencil2dConfig) -> Vec<f64> {
    let w = cfg.cols + 2;
    let mut u = vec![0.0f64; (cfg.rows + 2) * w];
    for c in 1..=cfg.cols {
        u[w + c] = 100.0;
    }
    for _ in 0..cfg.steps {
        u = sweep(&u, cfg.rows, cfg.cols, cfg.alpha, |r, c| {
            r == 1 || r == cfg.rows || c == 1 || c == cfg.cols
        });
    }
    let mut out = Vec::with_capacity(cfg.rows * cfg.cols);
    for r in 1..=cfg.rows {
        out.extend_from_slice(&u[r * w + 1..r * w + 1 + cfg.cols]);
    }
    out
}

#[cfg(test)]
#[allow(clippy::type_complexity)]
mod tests {
    use super::*;
    use openmpi_core::{Placement, StackConfig, Universe};
    use qsim::Mutex;
    use std::sync::Arc;

    fn run_grid(cfg: Stencil2dConfig) -> Vec<f64> {
        let blocks: Arc<Mutex<Vec<(usize, Vec<f64>)>>> = Arc::new(Mutex::new(Vec::new()));
        let b2 = blocks.clone();
        let cfg2 = cfg.clone();
        let uni = Universe::paper_testbed(StackConfig::best());
        uni.run_world(cfg.pr * cfg.pc, Placement::RoundRobin, move |mpi| {
            let w = mpi.world();
            let block = run(&mpi, &w, &cfg2);
            b2.lock().push((mpi.rank(), block));
        });
        let mut blocks = Arc::try_unwrap(blocks).unwrap().into_inner();
        blocks.sort_by_key(|(r, _)| *r);
        // Reassemble the global grid from the 2-D blocks.
        let lr = cfg.rows / cfg.pr;
        let lc = cfg.cols / cfg.pc;
        let mut grid = vec![0.0f64; cfg.rows * cfg.cols];
        for (rank, block) in blocks {
            let (gr, gc) = super::grid_pos(rank, cfg.pc);
            for r in 0..lr {
                for c in 0..lc {
                    grid[(gr * lr + r) * cfg.cols + gc * lc + c] = block[r * lc + c];
                }
            }
        }
        grid
    }

    #[test]
    fn two_by_two_grid_matches_serial() {
        let cfg = Stencil2dConfig::default();
        let reference = serial_reference(&cfg);
        let grid = run_grid(cfg);
        for (i, (a, b)) in grid.iter().zip(&reference).enumerate() {
            assert!((a - b).abs() < 1e-12, "cell {i}: {a} vs {b}");
        }
    }

    #[test]
    fn four_by_two_grid_matches_serial() {
        let cfg = Stencil2dConfig {
            rows: 32,
            cols: 16,
            pr: 4,
            pc: 2,
            steps: 12,
            alpha: 0.25,
        };
        let reference = serial_reference(&cfg);
        let grid = run_grid(cfg);
        for (i, (a, b)) in grid.iter().zip(&reference).enumerate() {
            assert!((a - b).abs() < 1e-12, "cell {i}: {a} vs {b}");
        }
    }
}
