//! # ompi-apps — mini-applications
//!
//! Realistic tightly coupled workloads of the kind the paper's introduction
//! motivates, written against the reproduction's MPI API and verified
//! against serial references:
//!
//! - [`stencil`] — 1-D-decomposed heat stencil with halo exchange.
//! - [`stencil2d`] — 2-D-decomposed stencil whose column halos travel as
//!   strided datatypes (MPI_Type_vector) straight out of the field.
//! - [`cg`] — conjugate gradient on a distributed 1-D Laplacian.
//! - [`ep`] — an embarrassingly parallel Gaussian-deviate kernel (compute
//!   bound; one closing allreduce).
//! - [`samplesort`] — parallel sample sort with probe-driven, variable
//!   length key exchange.
//!
//! Each module exposes a `run` function usable from any rank closure plus a
//! serial reference for verification; the crate tests run them on the
//! simulated testbed.

#![warn(missing_docs)]

pub mod cg;
pub mod ep;
pub mod samplesort;
pub mod stencil;
pub mod stencil2d;

use elan4::HostBuf;
use openmpi_core::Mpi;

/// Read a slice of f64s out of simulated memory.
pub fn read_f64s(mpi: &Mpi, buf: &HostBuf, off: usize, count: usize) -> Vec<f64> {
    mpi.read(buf, off, count * 8)
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

/// Write a slice of f64s into simulated memory.
pub fn write_f64s(mpi: &Mpi, buf: &HostBuf, off: usize, vals: &[f64]) {
    let bytes: Vec<u8> = vals.iter().flat_map(|v| v.to_le_bytes()).collect();
    mpi.write(buf, off, &bytes);
}

/// Global dot product: local partial + allreduce.
pub fn dot(mpi: &Mpi, comm: &openmpi_core::Communicator, a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    let local: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    // Model the flops.
    mpi.compute(qsim::Dur::from_ns(2 * a.len() as u64));
    let buf = mpi.alloc(8);
    write_f64s(mpi, &buf, 0, &[local]);
    mpi.allreduce(comm, openmpi_core::ReduceOp::SumF64, &buf, 8);
    let out = read_f64s(mpi, &buf, 0, 1)[0];
    mpi.free(buf);
    out
}
