//! Parallel sample sort.
//!
//! 1. Each rank sorts its local keys.
//! 2. Regular samples go to rank 0 (`gather`), which picks splitters and
//!    broadcasts them.
//! 3. Keys are exchanged pairwise; bucket sizes are *not* pre-agreed — the
//!    receiver uses `probe` to size each incoming bucket (exercising the
//!    message-probing the MPI layer provides).
//! 4. Each rank merges its received buckets.
//!
//! The result is globally sorted: rank i's largest key ≤ rank i+1's
//! smallest.

use openmpi_core::{Communicator, Mpi};

/// Problem definition for the parallel sort.
#[derive(Clone, Debug)]
pub struct SortConfig {
    /// Keys per rank before sorting.
    pub keys_per_rank: usize,
    /// Seed for the deterministic key generator.
    pub seed: u64,
}

impl Default for SortConfig {
    fn default() -> Self {
        SortConfig {
            keys_per_rank: 2000,
            seed: 42,
        }
    }
}

/// Deterministic pseudo-random keys for rank `rank`.
pub fn generate_keys(cfg: &SortConfig, rank: usize) -> Vec<u32> {
    let mut state = cfg
        .seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(rank as u64 + 1);
    (0..cfg.keys_per_rank)
        .map(|_| {
            // xorshift64*
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 32) as u32
        })
        .collect()
}

const TAG_SAMPLE_EXCHANGE: i32 = 70;

/// Distributed sample sort; returns this rank's globally ordered shard.
pub fn run(mpi: &Mpi, comm: &Communicator, cfg: &SortConfig) -> Vec<u32> {
    let me = comm.rank();
    let n = comm.size();

    let mut keys = generate_keys(cfg, me);
    keys.sort_unstable();
    mpi.compute(qsim::Dur::from_ns((keys.len() as u64) * 20)); // ~n log n

    if n == 1 {
        return keys;
    }

    // Regular sampling: n samples per rank.
    let samples: Vec<u32> = (0..n)
        .map(|i| keys[(i * keys.len()) / n + keys.len() / (2 * n)])
        .collect();
    let sbuf = mpi.alloc(4 * n);
    let bytes: Vec<u8> = samples.iter().flat_map(|k| k.to_le_bytes()).collect();
    mpi.write(&sbuf, 0, &bytes);
    let gathered = mpi.alloc(4 * n * n);
    mpi.gather(
        comm,
        0,
        &sbuf,
        4 * n,
        if me == 0 { Some(&gathered) } else { None },
    );

    // Rank 0 picks n-1 splitters and broadcasts them.
    let splitters: Vec<u32> = if me == 0 {
        let mut all: Vec<u32> = mpi
            .read(&gathered, 0, 4 * n * n)
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        all.sort_unstable();
        let sp: Vec<u32> = (1..n).map(|i| all[i * n]).collect();
        let sp_bytes: Vec<u8> = sp.iter().flat_map(|k| k.to_le_bytes()).collect();
        mpi.bcast_bytes(comm, 0, sp_bytes)
    } else {
        mpi.bcast_bytes(comm, 0, Vec::new())
    }
    .chunks_exact(4)
    .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
    .collect();
    mpi.free(sbuf);
    mpi.free(gathered);

    // Partition local keys into n buckets by the splitters.
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); n];
    for k in keys {
        let b = splitters.partition_point(|s| *s <= k);
        buckets[b].push(k);
    }

    // Exchange: send bucket d to rank d; receive n-1 buckets of unknown
    // size, probing for their lengths.
    let mut reqs = Vec::new();
    let mut send_bufs = Vec::new();
    for (d, bucket) in buckets.iter().enumerate() {
        if d == me {
            continue;
        }
        let bytes: Vec<u8> = bucket.iter().flat_map(|k| k.to_le_bytes()).collect();
        let buf = mpi.alloc(bytes.len().max(1));
        mpi.write(&buf, 0, &bytes);
        reqs.push(mpi.isend(comm, d, TAG_SAMPLE_EXCHANGE, &buf, bytes.len()));
        send_bufs.push(buf);
    }

    let mut merged: Vec<u32> = std::mem::take(&mut buckets[me]);
    for _ in 0..n - 1 {
        // Probe first: the bucket length is not known a priori.
        let st = mpi.probe(comm, openmpi_core::ANY_SOURCE, TAG_SAMPLE_EXCHANGE);
        let rbuf = mpi.alloc(st.len.max(1));
        let st2 = mpi.recv(comm, st.source as i32, TAG_SAMPLE_EXCHANGE, &rbuf, st.len);
        assert_eq!(st2.len, st.len);
        merged.extend(
            mpi.read(&rbuf, 0, st.len)
                .chunks_exact(4)
                .map(|c| u32::from_le_bytes(c.try_into().unwrap())),
        );
        mpi.free(rbuf);
    }
    mpi.waitall(reqs);
    for b in send_bufs {
        mpi.free(b);
    }

    merged.sort_unstable();
    mpi.compute(qsim::Dur::from_ns((merged.len() as u64) * 20));
    merged
}

/// Serial reference: concatenate every rank's keys and sort.
pub fn serial_reference(cfg: &SortConfig, nranks: usize) -> Vec<u32> {
    let mut all: Vec<u32> = (0..nranks).flat_map(|r| generate_keys(cfg, r)).collect();
    all.sort_unstable();
    all
}

#[cfg(test)]
#[allow(clippy::type_complexity)]
mod tests {
    use super::*;
    use openmpi_core::{Placement, StackConfig, Universe};
    use qsim::Mutex;
    use std::sync::Arc;

    fn run_sort(nranks: usize, cfg: SortConfig) -> Vec<(usize, Vec<u32>)> {
        let shards: Arc<Mutex<Vec<(usize, Vec<u32>)>>> = Arc::new(Mutex::new(Vec::new()));
        let s2 = shards.clone();
        let uni = Universe::paper_testbed(StackConfig::best());
        uni.run_world(nranks, Placement::RoundRobin, move |mpi| {
            let w = mpi.world();
            let shard = run(&mpi, &w, &cfg);
            s2.lock().push((mpi.rank(), shard));
        });
        let mut shards = Arc::try_unwrap(shards).unwrap().into_inner();
        shards.sort_by_key(|(r, _)| *r);
        shards
    }

    #[test]
    fn sorts_globally_on_4_ranks() {
        let cfg = SortConfig::default();
        let shards = run_sort(4, cfg.clone());
        let assembled: Vec<u32> = shards.iter().flat_map(|(_, s)| s.clone()).collect();
        assert_eq!(assembled, serial_reference(&cfg, 4));
        // Shard boundaries are ordered.
        for w in shards.windows(2) {
            if let (Some(hi), Some(lo)) = (w[0].1.last(), w[1].1.first()) {
                assert!(hi <= lo, "shard boundary out of order");
            }
        }
    }

    #[test]
    fn sorts_on_8_ranks_with_skewed_keys() {
        let cfg = SortConfig {
            keys_per_rank: 500,
            seed: 7,
        };
        let shards = run_sort(8, cfg.clone());
        let assembled: Vec<u32> = shards.into_iter().flat_map(|(_, s)| s).collect();
        assert_eq!(assembled, serial_reference(&cfg, 8));
    }

    #[test]
    fn single_rank_degenerates_to_local_sort() {
        let cfg = SortConfig {
            keys_per_rank: 100,
            seed: 3,
        };
        let shards = run_sort(1, cfg.clone());
        assert_eq!(shards[0].1, serial_reference(&cfg, 1));
    }
}
